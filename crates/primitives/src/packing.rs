//! The **parallel-packing** primitive (Section 2): group weighted items
//! (weights in `(0, 1]`) into bins such that every bin's weight is ≤ 1 and
//! all bins but at most one have weight ≥ 1/2. The number of bins is then
//! at most `1 + 2·Σ weights`.
//!
//! Implementation: greedy local packing, then the per-server leftover groups
//! (each of weight < 1/2) are packed along a two-level √p tree, matching the
//! paper's recursive scheme with `O(√p)` control load.

use crate::fxhash::FxHashMap;

use aj_mpc::{Net, Partitioned, ServerId};

use crate::prefix::prefix_sum;

/// Result of [`parallel_packing`].
#[derive(Debug, Clone)]
pub struct Packing<T> {
    /// Each item tagged with its bin id in `0..n_groups`, still on the
    /// server where it started (the assignment is metadata; moving the items
    /// is the caller's business).
    pub items: Partitioned<(T, u64)>,
    /// Total number of bins.
    pub n_groups: u64,
}

/// Pack weighted items into bins of capacity 1 (see module docs).
///
/// # Panics
/// Panics if any weight is outside `(0, 1]`.
pub fn parallel_packing<T>(net: &mut Net, items: Partitioned<(T, f64)>) -> Packing<T> {
    let p = net.p();
    assert_eq!(items.p(), p);
    // ---- Local greedy packing -------------------------------------------
    // Heavy items (w ≥ 1/2) close a bin alone; light items first-fit into a
    // running bin that closes once full. The (at most one) open bin per
    // server with weight < 1/2 is that server's "partial".
    struct Local<T> {
        // item, local bin id; bin ids: 0..full_bins are full, full_bins = partial.
        tagged: Vec<(T, usize)>,
        full_bins: usize,
        partial_weight: f64,
        has_partial: bool,
    }
    let mut locals: Vec<Local<T>> = Vec::with_capacity(p);
    for part in items.into_parts() {
        let mut tagged = Vec::with_capacity(part.len());
        let mut next_bin = 0usize;
        let mut open_weight = 0.0f64;
        let mut open_items: Vec<T> = Vec::new();
        for (item, w) in part {
            assert!(w > 0.0 && w <= 1.0, "packing weight {w} outside (0,1]");
            if w >= 0.5 {
                tagged.push((item, usize::MAX)); // placeholder, fixed below
                continue;
            }
            if open_weight + w > 1.0 {
                // Close the open bin (weight > 1/2 since w < 1/2).
                for it in open_items.drain(..) {
                    tagged.push((it, next_bin));
                }
                next_bin += 1;
                open_weight = 0.0;
            }
            open_weight += w;
            open_items.push(item);
        }
        // Assign heavy items their own bins.
        let mut fixed = Vec::with_capacity(tagged.len());
        for (item, b) in tagged {
            if b == usize::MAX {
                fixed.push((item, next_bin));
                next_bin += 1;
            } else {
                fixed.push((item, b));
            }
        }
        // Leftover open bin: partial iff weight < 1/2, else it's full.
        let mut has_partial = false;
        let mut partial_weight = 0.0;
        if !open_items.is_empty() {
            if open_weight >= 0.5 {
                for it in open_items.drain(..) {
                    fixed.push((it, next_bin));
                }
                next_bin += 1;
            } else {
                has_partial = true;
                partial_weight = open_weight;
                for it in open_items.drain(..) {
                    fixed.push((it, next_bin)); // bin id == full_bins marker
                }
            }
        }
        locals.push(Local {
            tagged: fixed,
            // With a partial open bin, ids 0..next_bin are the full bins and
            // the partial's items carry id == next_bin; without one, all ids
            // 0..next_bin are full. Either way the count is next_bin.
            full_bins: next_bin,
            partial_weight,
            has_partial,
        });
    }
    // Note: for servers with a partial, items in it carry bin id == full_bins.
    let full_counts: Vec<u64> = locals.iter().map(|l| l.full_bins as u64).collect();
    let (full_prefix, total_full) = prefix_sum(net, &full_counts);

    // ---- Pack the ≤ p partials (each < 1/2) along a √p tree -------------
    let g = (p as f64).sqrt().ceil() as usize;
    let leader = |s: usize| (s / g) * g;
    // Up: member partial → leader.
    let mut up: Vec<Vec<(ServerId, (usize, f64))>> = (0..p).map(|_| Vec::new()).collect();
    for (s, l) in locals.iter().enumerate() {
        if l.has_partial {
            up[s].push((leader(s), (s, l.partial_weight)));
        }
    }
    let at_leaders = net.exchange(up);
    // Leaders greedily pack member partials into leader bins.
    struct LeaderState {
        // member server -> local leader bin
        member_bin: Vec<(usize, usize)>,
        full_bins: usize,
        partial_weight: f64,
        has_partial: bool,
    }
    let mut leader_states: FxHashMap<usize, LeaderState> = FxHashMap::default();
    let mut leader_full_counts = vec![0u64; p];
    for (s, mut entries) in at_leaders.into_iter().enumerate() {
        if entries.is_empty() {
            continue;
        }
        entries.sort_unstable_by_key(|e| e.0);
        let mut member_bin = Vec::with_capacity(entries.len());
        let mut bin = 0usize;
        let mut w_open = 0.0f64;
        for (member, w) in entries {
            if w_open + w > 1.0 {
                bin += 1;
                w_open = 0.0;
            }
            w_open += w;
            member_bin.push((member, bin));
        }
        let has_partial = w_open > 0.0 && w_open < 0.5;
        let full_bins = if has_partial { bin } else { bin + 1 };
        leader_full_counts[s] = full_bins as u64;
        leader_states.insert(
            s,
            LeaderState {
                member_bin,
                full_bins,
                partial_weight: if has_partial { w_open } else { 0.0 },
                has_partial,
            },
        );
    }
    let (leader_prefix, total_leader_full) = prefix_sum(net, &leader_full_counts);
    // Up: leader partial → root (server 0).
    let mut up2: Vec<Vec<(ServerId, (usize, f64))>> = (0..p).map(|_| Vec::new()).collect();
    for (&s, st) in &leader_states {
        if st.has_partial {
            up2[s].push((0, (s, st.partial_weight)));
        }
    }
    let at_root = net.exchange(up2);
    // Root packs leader partials into root bins.
    let mut root_assign: FxHashMap<usize, usize> = FxHashMap::default();
    let mut root_bins = 0usize;
    {
        let mut entries = at_root.into_iter().next().unwrap_or_default();
        entries.sort_unstable_by_key(|e| e.0);
        let mut w_open = 0.0f64;
        for (leader_id, w) in entries {
            if w_open + w > 1.0 {
                root_bins += 1;
                w_open = 0.0;
            }
            w_open += w;
            root_assign.insert(leader_id, root_bins);
        }
        if w_open > 0.0 {
            root_bins += 1;
        }
    }
    // Down: root → leaders (their partial's root bin id, absolute).
    let mut down1: Vec<Vec<(ServerId, u64)>> = (0..p).map(|_| Vec::new()).collect();
    for (&leader_id, &bin) in &root_assign {
        let abs = total_full + total_leader_full + bin as u64;
        down1[0].push((leader_id, abs));
    }
    let leader_partial_ids = net.exchange(down1);
    // Down: leaders → members with each member partial's absolute bin id.
    let mut down2: Vec<Vec<(ServerId, u64)>> = (0..p).map(|_| Vec::new()).collect();
    for (s, st) in &leader_states {
        let own_partial_abs = leader_partial_ids[*s].first().copied();
        for &(member, bin) in &st.member_bin {
            let abs = if bin < st.full_bins {
                total_full + leader_prefix[*s] + bin as u64
            } else {
                own_partial_abs.expect("leader with partial got a root id")
            };
            down2[*s].push((member, abs));
        }
    }
    let member_partial_ids = net.exchange(down2);

    // ---- Final local tagging --------------------------------------------
    let mut out_parts: Vec<Vec<(T, u64)>> = Vec::with_capacity(p);
    for (s, l) in locals.into_iter().enumerate() {
        let partial_abs = member_partial_ids[s].first().copied();
        let base = full_prefix[s];
        let mut part = Vec::with_capacity(l.tagged.len());
        for (item, bin) in l.tagged {
            let abs = if l.has_partial && bin == l.full_bins {
                partial_abs.expect("member partial got an id")
            } else {
                base + bin as u64
            };
            part.push((item, abs));
        }
        out_parts.push(part);
    }
    let n_groups = total_full + total_leader_full + root_bins as u64;
    Packing {
        items: Partitioned::from_parts(out_parts),
        n_groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_mpc::Cluster;

    fn check_invariants(weights: &[(u64, f64)], packing: &Packing<u64>) {
        let items = packing.items.clone().gather_free();
        assert_eq!(items.len(), weights.len());
        let wmap: FxHashMap<u64, f64> = weights.iter().copied().collect();
        let mut bin_weight: FxHashMap<u64, f64> = FxHashMap::default();
        for (id, bin) in &items {
            assert!(*bin < packing.n_groups, "bin id out of range");
            *bin_weight.entry(*bin).or_insert(0.0) += wmap[id];
        }
        let mut under_half = 0;
        for w in bin_weight.values() {
            assert!(*w <= 1.0 + 1e-9, "bin overflows: {w}");
            if *w < 0.5 {
                under_half += 1;
            }
        }
        assert!(under_half <= 1, "more than one bin below 1/2");
        let total: f64 = weights.iter().map(|w| w.1).sum();
        assert!(
            packing.n_groups as f64 <= 1.0 + 2.0 * total,
            "too many bins: {} for total weight {total}",
            packing.n_groups
        );
    }

    fn run_case(p: usize, weights: Vec<f64>) {
        let tagged: Vec<(u64, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as u64, w))
            .collect();
        let mut cluster = Cluster::new(p);
        let mut net = cluster.net();
        let parts = Partitioned::distribute(tagged.clone(), p);
        let packing = parallel_packing(&mut net, parts);
        check_invariants(&tagged, &packing);
    }

    #[test]
    fn uniform_small_weights() {
        run_case(4, vec![0.1; 100]);
    }

    #[test]
    fn heavy_items_get_own_bins() {
        run_case(3, vec![0.9, 0.8, 0.7, 0.6, 0.55]);
    }

    #[test]
    fn mixed_weights() {
        let w: Vec<f64> = (1..200)
            .map(|i| ((i * 37) % 100) as f64 / 100.0 + 0.005)
            .collect();
        let w: Vec<f64> = w.into_iter().map(|x| x.min(1.0)).collect();
        run_case(8, w);
    }

    #[test]
    fn single_server() {
        run_case(1, vec![0.3, 0.3, 0.3, 0.3, 0.2]);
    }

    #[test]
    fn tiny_weights_many_servers() {
        run_case(16, vec![0.01; 64]);
    }

    #[test]
    fn empty_input() {
        let mut cluster = Cluster::new(4);
        let mut net = cluster.net();
        let parts: Partitioned<(u64, f64)> = Partitioned::empty(4);
        let packing = parallel_packing(&mut net, parts);
        assert_eq!(packing.n_groups, 0);
        assert!(packing.items.is_empty());
    }

    #[test]
    fn control_load_is_sublinear() {
        let p = 64;
        let mut cluster = Cluster::new(p);
        {
            let mut net = cluster.net();
            let tagged: Vec<(u64, f64)> = (0..p as u64).map(|i| (i, 0.05)).collect();
            let parts = Partitioned::distribute(tagged, p);
            parallel_packing(&mut net, parts);
        }
        // Tree fanout √64 = 8 → loads stay O(√p).
        assert!(
            cluster.stats().max_load <= 16,
            "load {}",
            cluster.stats().max_load
        );
    }
}
