//! Prefix sums and broadcast over per-server control values.
//!
//! Implemented with a two-level √p-fanout tree so no server receives more
//! than `O(√p)` control units in a round (the BSP prefix-sums of Goodrich et
//! al. cited by the paper achieve `O(1)` rounds similarly).

use aj_mpc::{Net, ServerId, Wire};

/// Exclusive prefix sums: server `s` contributed `values[s]`; the result at
/// index `s` is `values\[0\] + … + values[s-1]`, available to server `s`.
/// Also returns the grand total (available to every server).
///
/// Rounds: 4; load `O(√p)` control units.
pub fn prefix_sum(net: &mut Net, values: &[u64]) -> (Vec<u64>, u64) {
    let p = net.p();
    assert_eq!(values.len(), p);
    let g = (p as f64).sqrt().ceil() as usize; // group size
    let leader = |s: usize| (s / g) * g;
    // Up 1: members → group leader.
    let mut up1: Vec<Vec<(ServerId, (usize, u64))>> = (0..p).map(|_| Vec::new()).collect();
    for s in 0..p {
        up1[s].push((leader(s), (s, values[s])));
    }
    let at_leaders = net.exchange(up1);
    // Leaders compute group totals; up 2: leaders → root (server 0).
    let mut group_members: Vec<Vec<(usize, u64)>> = (0..p).map(|_| Vec::new()).collect();
    let mut up2: Vec<Vec<(ServerId, (usize, u64))>> = (0..p).map(|_| Vec::new()).collect();
    for (s, mut entries) in at_leaders.into_iter().enumerate() {
        if entries.is_empty() {
            continue;
        }
        entries.sort_unstable_by_key(|e| e.0);
        let total: u64 = entries.iter().map(|e| e.1).sum();
        group_members[s] = entries;
        up2[s].push((0, (s, total)));
    }
    let at_root = net.exchange(up2);
    // Root computes exclusive prefixes of group totals; down 1: root → leaders.
    let mut down1: Vec<Vec<(ServerId, (u64, u64))>> = (0..p).map(|_| Vec::new()).collect();
    {
        let mut groups = at_root.into_iter().next().unwrap_or_default();
        groups.sort_unstable_by_key(|e| e.0);
        let grand_total: u64 = groups.iter().map(|e| e.1).sum();
        let mut running = 0u64;
        for (leader_id, total) in groups {
            down1[0].push((leader_id, (running, grand_total)));
            running += total;
        }
    }
    let at_leaders2 = net.exchange(down1);
    // Down 2: leaders → members with each member's exclusive prefix.
    let mut down2: Vec<Vec<(ServerId, (u64, u64))>> = (0..p).map(|_| Vec::new()).collect();
    for (s, base) in at_leaders2.into_iter().enumerate() {
        let Some(&(group_base, grand_total)) = base.first() else {
            continue;
        };
        let mut running = group_base;
        for &(member, v) in &group_members[s] {
            down2[s].push((member, (running, grand_total)));
            running += v;
        }
    }
    let finals = net.exchange(down2);
    let mut prefixes = vec![0u64; p];
    let mut grand = 0u64;
    for (s, msgs) in finals.into_iter().enumerate() {
        if let Some(&(pre, total)) = msgs.first() {
            prefixes[s] = pre;
            grand = total;
        }
    }
    (prefixes, grand)
}

/// Broadcast one value from server `src` to all servers (1 unit received
/// each). Returns the value for convenience.
pub fn broadcast_value<T: Clone + Send + Wire>(net: &mut Net, src: ServerId, value: T) -> T {
    let got = net.broadcast(src, vec![value]);
    got.into_iter()
        .next()
        .and_then(|mut v| v.pop())
        .expect("broadcast delivers to server 0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_mpc::Cluster;

    #[test]
    fn prefix_matches_sequential() {
        for p in [1usize, 2, 3, 8, 17, 64] {
            let mut cluster = Cluster::new(p);
            let mut net = cluster.net();
            let values: Vec<u64> = (0..p as u64).map(|i| i * i + 1).collect();
            let (pre, total) = prefix_sum(&mut net, &values);
            let mut expect = Vec::with_capacity(p);
            let mut run = 0;
            for &v in &values {
                expect.push(run);
                run += v;
            }
            assert_eq!(pre, expect, "p={p}");
            assert_eq!(total, run);
        }
    }

    #[test]
    fn prefix_load_is_sqrt_p() {
        let p = 64;
        let mut cluster = Cluster::new(p);
        {
            let mut net = cluster.net();
            let values = vec![1u64; p];
            prefix_sum(&mut net, &values);
        }
        // √64 = 8 members per leader, 8 leaders at root.
        assert!(
            cluster.stats().max_load <= 2 * 8,
            "load {} too high",
            cluster.stats().max_load
        );
    }

    #[test]
    fn broadcast_reaches_all() {
        let mut cluster = Cluster::new(5);
        let mut net = cluster.net();
        let v = broadcast_value(&mut net, 2, 99u64);
        assert_eq!(v, 99);
        assert_eq!(net.stats().max_load, 1);
    }
}
