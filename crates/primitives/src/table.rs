//! The distributed hash-table pattern: `own_by_key` builds a table whose
//! entries live at the hash-owner of their key; `lookup` answers per-server
//! key queries against it. Sum-by-key, semi-join and multi-search are thin
//! layers on top.
//!
//! Loads: building is one exchange of the table (linear). A lookup costs two
//! exchanges: requesters send each *distinct local* key once (≤ local input),
//! owners reply once per request. Both directions are `O(IN/p)` as long as
//! the querying collection is balanced — which the initial MPC placement
//! guarantees.
//!
//! All per-server phases (local pre-aggregation, owner-side aggregation,
//! answer assembly) run through the round API ([`Net::round_map`],
//! [`Net::run_local`]), so a parallel executor runs them concurrently across
//! servers while the measured loads stay bit-identical to the sequential
//! executor.

use crate::fxhash::{fx_map_with_capacity, FxHashMap, FxHashSet};

use aj_mpc::{Net, Partitioned, ServerId, Wire};

use crate::key::Key;

/// A distributed key→value table: entry `(k, v)` lives on `k.owner(seed, p)`.
/// Each key appears at most once globally.
#[derive(Debug, Clone)]
pub struct OwnedTable<K: Key, V> {
    /// Routing seed deciding each key's owner.
    pub seed: u64,
    /// The entries, sharded by owner.
    pub parts: Partitioned<(K, V)>,
}

/// Aggregate `(key, value)` pairs per key with the associative `combine`,
/// returning an [`OwnedTable`] holding one entry per distinct key.
///
/// This is the paper's **sum-by-key** primitive: local pre-aggregation, then
/// one exchange to the key owner, then owner-side aggregation. One round.
pub fn sum_by_key<K: Key + Wire, V: Clone + Send + Wire>(
    net: &mut Net,
    pairs: Partitioned<(K, V)>,
    seed: u64,
    combine: impl Fn(V, V) -> V + Sync,
) -> OwnedTable<K, V> {
    use std::collections::hash_map::Entry;
    let p = net.p();
    // Local pre-aggregation bounds traffic per key at one unit per server.
    // Entry-based merge: one hash probe per pair instead of remove+insert.
    let received = net.round_map(pairs.into_parts(), |_, part: Vec<(K, V)>| {
        let mut local: FxHashMap<K, V> = fx_map_with_capacity(part.len());
        for (k, v) in part {
            match local.entry(k) {
                Entry::Occupied(mut e) => {
                    let merged = combine(e.get().clone(), v);
                    e.insert(merged);
                }
                Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
        local
            .into_iter()
            .map(|(k, v)| (k.owner(seed, p), (k, v)))
            .collect()
    });
    let parts = net.run_local(received, |_, entries: Vec<(K, V)>| {
        let mut m: FxHashMap<K, V> = fx_map_with_capacity(entries.len());
        for (k, v) in entries {
            match m.entry(k) {
                Entry::Occupied(mut e) => {
                    let merged = combine(e.get().clone(), v);
                    e.insert(merged);
                }
                Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
        let mut v: Vec<(K, V)> = m.into_iter().collect();
        v.sort_by(|a, b| a.0.cmp(&b.0)); // determinism
        v
    });
    OwnedTable {
        seed,
        parts: Partitioned::from_parts(parts),
    }
}

/// Build an [`OwnedTable`] from `(key, value)` pairs assumed to have globally
/// distinct keys (one exchange; panics in debug if duplicates collide).
pub fn own_by_key<K: Key + Wire, V: Send + Wire>(
    net: &mut Net,
    pairs: Partitioned<(K, V)>,
    seed: u64,
) -> OwnedTable<K, V> {
    let p = net.p();
    let received = net.round_map(pairs.into_parts(), |_, part: Vec<(K, V)>| {
        part.into_iter()
            .map(|(k, v)| (k.owner(seed, p), (k, v)))
            .collect()
    });
    let parts = net.run_local(received, |_, mut part: Vec<(K, V)>| {
        part.sort_by(|a, b| a.0.cmp(&b.0));
        debug_assert!(
            part.windows(2).all(|w| w[0].0 != w[1].0),
            "own_by_key requires globally distinct keys"
        );
        part
    });
    OwnedTable {
        seed,
        parts: Partitioned::from_parts(parts),
    }
}

/// Query an [`OwnedTable`]: each server asks for its distinct local keys in
/// `requests` and receives a local map answering them (keys absent from the
/// table are absent from the map). Two rounds; the paper's **multi-search**
/// specialised to equality lookups.
pub fn lookup<K: Key + Wire, V: Clone + Send + Sync + Wire>(
    net: &mut Net,
    table: &OwnedTable<K, V>,
    requests: &Partitioned<K>,
) -> Vec<FxHashMap<K, V>> {
    let p = net.p();
    assert_eq!(requests.p(), p, "requests must span the same servers");
    // Phase 1: distinct local keys → owner, tagged with requester id.
    let asks = net.round(|s| {
        let distinct: FxHashSet<&K> = requests[s].iter().collect();
        distinct
            .into_iter()
            .map(|k| (k.owner(table.seed, p), (k.clone(), s)))
            .collect()
    });
    // Phase 2: owner answers (only hits; misses are implied).
    let answers = net.round_map(asks, |owner, asks: Vec<(K, ServerId)>| {
        let local: FxHashMap<&K, &V> = table.parts[owner].iter().map(|(k, v)| (k, v)).collect();
        asks.into_iter()
            .filter_map(|(k, requester)| {
                local
                    .get(&k)
                    .map(|v| (requester, (k.clone(), (*v).clone())))
            })
            .collect()
    });
    net.run_local(answers, |_, entries: Vec<(K, V)>| {
        entries.into_iter().collect()
    })
}

/// The **semi-join** primitive: keep the items of `items` whose key occurs in
/// `right_keys`. Three rounds total, linear load.
pub fn semi_join<T: Send + Sync, K: Key + Wire>(
    net: &mut Net,
    items: Partitioned<T>,
    key_of: impl Fn(&T) -> K + Sync,
    right_keys: Partitioned<K>,
    seed: u64,
) -> Partitioned<T> {
    // Build the membership table (dedup at owner via sum_by_key on unit).
    let keyed = right_keys.map(|_, k| (k, ()));
    let table = sum_by_key(net, keyed, seed, |_, _| ());
    let request_keys =
        Partitioned::from_parts(net.run_each(|s| items[s].iter().map(&key_of).collect::<Vec<K>>()));
    let hits = lookup(net, &table, &request_keys);
    let kept = net.run_local(
        items.into_parts().into_iter().zip(hits).collect::<Vec<_>>(),
        |_, (part, map): (Vec<T>, FxHashMap<K, ()>)| {
            part.into_iter()
                .filter(|t| map.contains_key(&key_of(t)))
                .collect::<Vec<T>>()
        },
    );
    Partitioned::from_parts(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_mpc::Cluster;

    #[test]
    fn sum_by_key_totals() {
        let mut cluster = Cluster::new(4);
        let mut net = cluster.net();
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i % 10, 1u64)).collect();
        let parts = Partitioned::distribute(pairs, 4);
        let table = sum_by_key(&mut net, parts, 7, |a, b| a + b);
        let mut all: Vec<(u64, u64)> = table.parts.gather_free();
        all.sort_unstable();
        assert_eq!(all.len(), 10);
        assert!(all.iter().all(|&(_, c)| c == 10));
    }

    #[test]
    fn sum_by_key_load_is_linear_despite_skew() {
        // One heavy key: naive hash-routing of raw pairs would load one
        // server with everything; pre-aggregation caps it at p units.
        let p = 8;
        let n = 1000u64;
        let mut cluster = Cluster::new(p);
        {
            let mut net = cluster.net();
            let pairs: Vec<(u64, u64)> = (0..n).map(|_| (42u64, 1u64)).collect();
            let parts = Partitioned::distribute(pairs, p);
            let table = sum_by_key(&mut net, parts, 7, |a, b| a + b);
            assert_eq!(table.parts.gather_free(), vec![(42, n)]);
        }
        assert!(
            cluster.stats().max_load <= p as u64,
            "skewed sum-by-key overloaded: {}",
            cluster.stats().max_load
        );
    }

    #[test]
    fn lookup_answers_hits_and_misses() {
        let mut cluster = Cluster::new(3);
        let mut net = cluster.net();
        let table = own_by_key(
            &mut net,
            Partitioned::distribute(
                vec![
                    (1u64, "a".to_string()),
                    (2, "b".to_string()),
                    (3, "c".to_string()),
                ],
                3,
            ),
            11,
        );
        let requests = Partitioned::from_parts(vec![vec![1u64, 99], vec![2, 2, 2], vec![]]);
        let ans = lookup(&mut net, &table, &requests);
        assert_eq!(ans[0].get(&1).map(String::as_str), Some("a"));
        assert_eq!(ans[0].get(&99), None);
        assert_eq!(ans[1].get(&2).map(String::as_str), Some("b"));
        assert!(ans[2].is_empty());
    }

    #[test]
    fn lookup_duplicate_requests_cost_one_unit() {
        // A server asking the same key 1000 times sends it once.
        let p = 2;
        let mut cluster = Cluster::new(p);
        {
            let mut net = cluster.net();
            let table = own_by_key(&mut net, Partitioned::distribute(vec![(5u64, 1u8)], p), 3);
            let requests = Partitioned::from_parts(vec![vec![5u64; 1000], vec![]]);
            let ans = lookup(&mut net, &table, &requests);
            assert_eq!(ans[0].len(), 1);
        }
        // Build (1) + ask (1 per distinct) + answer (1): max load tiny.
        assert!(cluster.stats().max_load <= 2);
    }

    #[test]
    fn semi_join_filters_by_membership() {
        let mut cluster = Cluster::new(4);
        let mut net = cluster.net();
        let items = Partitioned::distribute((0..20u64).collect::<Vec<_>>(), 4);
        let keys = Partitioned::distribute(vec![0u64, 1], 4);
        let kept = semi_join(&mut net, items, |&x| x % 3, keys, 5);
        let mut got = kept.gather_free();
        got.sort_unstable();
        let want: Vec<u64> = (0..20).filter(|x| x % 3 <= 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn semi_join_with_duplicate_right_keys() {
        let mut cluster = Cluster::new(2);
        let mut net = cluster.net();
        let items = Partitioned::distribute(vec![1u64, 2, 3], 2);
        let keys = Partitioned::distribute(vec![2u64, 2, 2, 2], 2);
        let kept = semi_join(&mut net, items, |&x| x, keys, 5);
        assert_eq!(kept.gather_free(), vec![2]);
    }

    /// Primitives must behave identically on both executors.
    #[test]
    fn primitives_agree_across_executors() {
        let body = |net: &mut Net| {
            let pairs: Vec<(u64, u64)> = (0..500).map(|i| (i % 37, i)).collect();
            let table = sum_by_key(net, Partitioned::distribute(pairs, net.p()), 9, |a, b| {
                a + b
            });
            let requests = Partitioned::distribute((0..60u64).collect::<Vec<_>>(), net.p());
            let ans = lookup(net, &table, &requests);
            let mut flat: Vec<(u64, u64)> = ans
                .into_iter()
                .flat_map(|m| m.into_iter().collect::<Vec<_>>())
                .collect();
            flat.sort_unstable();
            flat
        };
        let (a, sa) = aj_mpc::run(6, body);
        let (b, sb) = aj_mpc::run_parallel(6, body);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }
}
