//! Property-based tests of the Section-2 primitives: results must match a
//! sequential reference on arbitrary inputs, and the key invariants
//! (consecutive numbering, packing feasibility, allocation disjointness)
//! must hold for all weights/keys/cluster sizes.

use std::collections::HashMap;

use aj_mpc::{Cluster, Partitioned};
use aj_primitives::{
    allocate_servers, lookup, multi_numbering, parallel_packing, prefix_sum, sum_by_key,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn sum_by_key_equals_sequential(
        pairs in prop::collection::vec((0u64..40, 1u64..100), 0..300),
        p in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut want: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in &pairs {
            *want.entry(k).or_insert(0) += v;
        }
        let mut cluster = Cluster::new(p);
        let mut net = cluster.net();
        let table = sum_by_key(&mut net, Partitioned::distribute(pairs, p), seed, |a, b| a + b);
        let got: HashMap<u64, u64> = table.parts.gather_free().into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn lookup_answers_exactly_the_table(
        entries in prop::collection::vec((0u64..50, 0u64..1000), 0..100),
        queries in prop::collection::vec(0u64..80, 0..200),
        p in 1usize..10,
    ) {
        // Deduplicate keys (own_by_key requires distinct).
        let mut dedup: HashMap<u64, u64> = HashMap::new();
        for (k, v) in entries {
            dedup.insert(k, v);
        }
        let entries: Vec<(u64, u64)> = dedup.iter().map(|(&k, &v)| (k, v)).collect();
        let mut cluster = Cluster::new(p);
        let mut net = cluster.net();
        let table = aj_primitives::own_by_key(&mut net, Partitioned::distribute(entries, p), 7);
        let reqs = Partitioned::distribute(queries.clone(), p);
        let answers = lookup(&mut net, &table, &reqs);
        for (part, ans) in reqs.iter().zip(&answers) {
            for k in part {
                prop_assert_eq!(ans.get(k), dedup.get(k));
            }
        }
    }

    #[test]
    fn multi_numbering_is_a_bijection_per_key(
        items in prop::collection::vec((0u64..10, 0u64..1000), 0..250),
        p in 1usize..10,
    ) {
        let mut cluster = Cluster::new(p);
        let mut net = cluster.net();
        let numbered =
            multi_numbering(&mut net, Partitioned::distribute(items.clone(), p), 5).gather_free();
        prop_assert_eq!(numbered.len(), items.len());
        let mut per_key: HashMap<u64, Vec<u64>> = HashMap::new();
        for (k, _, n) in numbered {
            per_key.entry(k).or_default().push(n);
        }
        for (k, mut nums) in per_key {
            nums.sort_unstable();
            let want: Vec<u64> = (0..nums.len() as u64).collect();
            prop_assert_eq!(&nums, &want, "key {} numbering broken", k);
        }
    }

    #[test]
    fn packing_invariants_hold(
        weights in prop::collection::vec(1u32..=100, 0..200),
        p in 1usize..12,
    ) {
        let items: Vec<(u64, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as u64, w as f64 / 100.0))
            .collect();
        let total: f64 = items.iter().map(|x| x.1).sum();
        let mut cluster = Cluster::new(p);
        let mut net = cluster.net();
        let packing = parallel_packing(&mut net, Partitioned::distribute(items.clone(), p));
        let tagged = packing.items.gather_free();
        prop_assert_eq!(tagged.len(), items.len());
        let wmap: HashMap<u64, f64> = items.into_iter().collect();
        let mut bins: HashMap<u64, f64> = HashMap::new();
        for (id, bin) in tagged {
            prop_assert!(bin < packing.n_groups);
            *bins.entry(bin).or_insert(0.0) += wmap[&id];
        }
        let mut below_half = 0;
        for w in bins.values() {
            prop_assert!(*w <= 1.0 + 1e-9, "bin overflow {w}");
            if *w < 0.5 {
                below_half += 1;
            }
        }
        prop_assert!(below_half <= 1, "more than one under-full bin");
        prop_assert!(packing.n_groups as f64 <= 1.0 + 2.0 * total);
    }

    #[test]
    fn prefix_sum_equals_sequential(values in prop::collection::vec(0u64..1000, 1..60)) {
        let p = values.len();
        let mut cluster = Cluster::new(p);
        let mut net = cluster.net();
        let (pre, total) = prefix_sum(&mut net, &values);
        let mut run = 0;
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(pre[i], run);
            run += v;
        }
        prop_assert_eq!(total, run);
    }

    #[test]
    fn allocation_tiles_the_range(
        demands in prop::collection::vec((0u64..100, 0u64..8), 0..40),
        p in 1usize..10,
    ) {
        // Distinct subproblem ids.
        let mut dedup: HashMap<u64, u64> = HashMap::new();
        for (j, d) in demands {
            dedup.insert(j, d);
        }
        let demands: Vec<(u64, u64)> = dedup.into_iter().collect();
        let want_total: u64 = demands.iter().map(|d| d.1).sum();
        let mut cluster = Cluster::new(p);
        let mut net = cluster.net();
        let (table, total) = allocate_servers(&mut net, Partitioned::distribute(demands, p), 13);
        prop_assert_eq!(total, want_total);
        let mut allocs: Vec<_> = table.parts.gather_free();
        allocs.sort_by_key(|a| (a.1.start, a.1.len));
        // Non-empty ranges tile [0, total) exactly; empty ranges may share a
        // boundary with their neighbours but must stay inside the range.
        let mut cursor = 0;
        for (_, a) in allocs {
            if a.len == 0 {
                prop_assert!(a.start <= want_total);
                continue;
            }
            prop_assert_eq!(a.start, cursor);
            cursor = a.end();
        }
        prop_assert_eq!(cursor, want_total);
    }
}
