//! A tiny, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment of this repository is fully offline, so the real
//! `proptest` cannot be fetched. The workspace's property tests use a small,
//! well-defined subset — integer-range strategies, tuple strategies,
//! `prop::collection::vec`, the `proptest!` macro, `prop_assert*!` and
//! `prop_assume!` — which this crate reimplements with the same surface
//! syntax so the test files compile unchanged.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** On failure the test panics with the sampled arguments
//!   so the case can be replayed by hand (every generator in this repo is
//!   seed-addressable anyway).
//! * **Deterministic.** The RNG seed is derived from the test name, so a
//!   failing case fails on every run and in CI — there is no `proptest-regressions`
//!   file to manage.

use std::ops::{Range, RangeInclusive};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
    /// Abort once rejections (`prop_assume!`) exceed `cases` times this
    /// ratio (the real crate's `max_global_rejects` knob, simplified).
    pub max_reject_ratio: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_reject_ratio: 50,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — resample, do not count the case.
    Reject,
    /// `prop_assert*!` failed — the property is violated.
    Fail(String),
}

/// Result of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 stream used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream derived purely from the test's name: reruns sample the same
    /// cases, so failures are reproducible without a regression file.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A value generator. Strategies are sampled by reference so range
/// expressions can be written inline in `proptest!` argument lists.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a uniform length in
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng};

    /// The `prop::` module alias the real crate's prelude exposes.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a `proptest!` body; failure reports the sampled
/// arguments instead of unwinding through them.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body (operands are only borrowed).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            ::std::stringify!($left),
                            ::std::stringify!($right),
                            l,
                            r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            ::std::format!($($fmt)+),
                            l,
                            r
                        ),
                    ));
                }
            }
        }
    };
}

/// Discard the current case (resampled without counting toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Supports the subset
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(0u64..10, 0..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(::std::stringify!($name));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(config.max_reject_ratio) + 1000,
                    "prop_assume! rejected too many cases"
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let case_desc = ::std::format!("{:?}", ($(&$arg,)+));
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        ::std::panic!(
                            "property '{}' failed (no shrinking in this shim)\n args: {}\n {}",
                            ::std::stringify!($name),
                            case_desc,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u64..9, y in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y), "y = {} out of range", y);
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec((0u64..5, 0usize..3), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            for (a, b) in &v {
                prop_assert!(*a < 5 && *b < 3);
            }
        }

        #[test]
        fn assume_rejects_without_counting(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_streams() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_panic_with_args() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 1, ..ProptestConfig::default() })]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
