//! A tiny, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment of this repository is fully offline, so the real
//! `proptest` cannot be fetched. The workspace's property tests use a small,
//! well-defined subset — integer-range strategies, tuple strategies,
//! `prop::collection::vec`, the `proptest!` macro, `prop_assert*!` and
//! `prop_assume!` — which this crate reimplements with the same surface
//! syntax so the test files compile unchanged.
//!
//! Differences from the real crate, by design:
//!
//! * **Greedy shrinking.** On failure the runner repeatedly asks each
//!   argument's strategy for simpler candidates ([`Strategy::shrink`]) and
//!   keeps any candidate that still fails, within a fixed budget of re-runs.
//!   Integer ranges shrink toward their lower bound, `Vec`s drop halves and
//!   single elements before shrinking elements in place, tuples shrink one
//!   component at a time. The panic reports both the originally sampled and
//!   the shrunk arguments.
//! * **Deterministic.** The RNG seed is derived from the test name, so a
//!   failing case fails on every run and in CI — there is no `proptest-regressions`
//!   file to manage.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
    /// Abort once rejections (`prop_assume!`) exceed `cases` times this
    /// ratio (the real crate's `max_global_rejects` knob, simplified).
    pub max_reject_ratio: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_reject_ratio: 50,
        }
    }
}

/// Outcome of one sampled case after [`__run_and_shrink`].
#[doc(hidden)]
#[derive(Debug)]
pub enum CaseOutcome<V> {
    /// The property held.
    Pass,
    /// `prop_assume!` rejected the case.
    Reject,
    /// The property failed; `shrunk` is the simplest still-failing value
    /// found within the shrink budget.
    Fail {
        /// Simplest failing case found.
        shrunk: V,
        /// Number of successful shrink steps taken.
        steps: u32,
        /// Failure message of the shrunk case.
        msg: String,
    },
}

/// Run one case body, and on failure greedily shrink it: adopt any candidate
/// from [`Strategy::shrink`] that still fails, restarting from the most
/// aggressive candidates, until no candidate fails or the re-run budget is
/// exhausted. A free function (not macro-generated code) so the `proptest!`
/// macro can pass its case-destructuring closure in argument position, where
/// the closure's parameter type is pinned to the strategy's `Value`.
#[doc(hidden)]
pub fn __run_and_shrink<S, F>(strat: &S, case: S::Value, body: F) -> CaseOutcome<S::Value>
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> TestCaseResult,
{
    match body(case.clone()) {
        Ok(()) => CaseOutcome::Pass,
        Err(TestCaseError::Reject) => CaseOutcome::Reject,
        Err(TestCaseError::Fail(msg)) => {
            let mut case = case;
            let mut msg = msg;
            let mut steps = 0u32;
            let mut budget = 256u32;
            let mut improved = true;
            while improved && budget > 0 {
                improved = false;
                for cand in strat.shrink(&case) {
                    if budget == 0 {
                        break;
                    }
                    budget -= 1;
                    if let Err(TestCaseError::Fail(m)) = body(cand.clone()) {
                        case = cand;
                        msg = m;
                        steps += 1;
                        improved = true;
                        break;
                    }
                }
            }
            CaseOutcome::Fail {
                shrunk: case,
                steps,
                msg,
            }
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — resample, do not count the case.
    Reject,
    /// `prop_assert*!` failed — the property is violated.
    Fail(String),
}

/// Result of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 stream used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream derived purely from the test's name: reruns sample the same
    /// cases, so failures are reproducible without a regression file.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A value generator. Strategies are sampled by reference so range
/// expressions can be written inline in `proptest!` argument lists.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
    /// Candidate simplifications of a failing `value`, most aggressive
    /// first. The runner keeps a candidate only if the property still fails
    /// on it. Strategies with no meaningful notion of "simpler" return none.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// Shared integer shrinker: toward the range's lower bound, halving the
/// distance first (aggressive), then decrementing (fine-grained).
macro_rules! int_shrink_body {
    ($lo:expr, $v:expr, $t:ty) => {{
        let lo: $t = $lo;
        let v: $t = *$v;
        let mut out: Vec<$t> = Vec::new();
        if v > lo {
            out.push(lo);
            let mid = lo + (v - lo) / 2;
            if mid != lo {
                out.push(mid);
            }
            let dec = v - 1;
            if dec != lo && dec != mid {
                out.push(dec);
            }
        }
        out
    }};
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_body!(self.start, value, $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_body!(*self.start(), value, $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32);

/// Tuple strategies (arity 1–6): sample component-wise, shrink one
/// component at a time with the others held fixed. The `proptest!` runner
/// folds every argument list into one such tuple, so per-argument shrinking
/// falls out of this impl.
macro_rules! impl_tuple_strategy {
    ($($A:ident . $idx:tt),+) => {
        impl<$($A: Strategy),+> Strategy for ($($A,)+)
        where
            $($A::Value: Clone),+
        {
            type Value = ($($A::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut w = value.clone();
                        w.$idx = cand;
                        out.push(w);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a uniform length in
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
        /// Delta-debugging style: drop a half, then single elements, then
        /// shrink elements in place — never below the strategy's minimum
        /// length, so every candidate is a value `sample` could have drawn.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let min = self.size.start;
            let n = value.len();
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            if n / 2 >= min && n / 2 < n {
                out.push(value[..n / 2].to_vec());
                out.push(value[n - n / 2..].to_vec());
            }
            if n > min {
                for i in 0..n.min(16) {
                    let mut w = value.clone();
                    w.remove(i);
                    out.push(w);
                }
            }
            for i in 0..n.min(16) {
                for cand in self.element.shrink(&value[i]).into_iter().take(3) {
                    let mut w = value.clone();
                    w[i] = cand;
                    out.push(w);
                }
            }
            out
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng};

    /// The `prop::` module alias the real crate's prelude exposes.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a `proptest!` body; failure reports the sampled
/// arguments instead of unwinding through them.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body (operands are only borrowed).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            ::std::stringify!($left),
                            ::std::stringify!($right),
                            l,
                            r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            ::std::format!($($fmt)+),
                            l,
                            r
                        ),
                    ));
                }
            }
        }
    };
}

/// Discard the current case (resampled without counting toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Supports the subset
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(0u64..10, 0..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(::std::stringify!($name));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(config.max_reject_ratio) + 1000,
                    "prop_assume! rejected too many cases"
                );
                let strat = ($(($strat),)+);
                let case = $crate::Strategy::sample(&strat, &mut rng);
                let case_desc = ::std::format!("{:?}", case);
                let outcome = $crate::__run_and_shrink(&strat, case, |($($arg,)+)| {
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
                match outcome {
                    $crate::CaseOutcome::Pass => accepted += 1,
                    $crate::CaseOutcome::Reject => {}
                    $crate::CaseOutcome::Fail { shrunk, steps, msg } => {
                        ::std::panic!(
                            "property '{}' failed\n sampled args: {}\n shrunk args ({} shrink steps): {:?}\n {}",
                            ::std::stringify!($name),
                            case_desc,
                            steps,
                            shrunk,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u64..9, y in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y), "y = {} out of range", y);
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec((0u64..5, 0usize..3), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            for (a, b) in &v {
                prop_assert!(*a < 5 && *b < 3);
            }
        }

        #[test]
        fn assume_rejects_without_counting(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_streams() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn int_ranges_shrink_toward_start() {
        let s = 3u64..100;
        let c = s.shrink(&40);
        assert_eq!(c, vec![3, 21, 39]);
        assert!(s.shrink(&3).is_empty(), "lower bound has no shrinks");
        let si = 2usize..=9;
        assert_eq!(si.shrink(&4), vec![2, 3]);
        let neg = -10i32..10;
        assert_eq!(neg.shrink(&-10), Vec::<i32>::new());
        assert_eq!(neg.shrink(&0), vec![-10, -5, -1]);
    }

    #[test]
    fn tuples_shrink_one_component_at_a_time() {
        let s = (0u64..10, 5usize..8);
        for (a, b) in s.shrink(&(4, 7)) {
            assert!((a, b) != (4, 7), "candidate must differ");
            assert!(a == 4 || b == 7, "only one component may move");
            assert!(a <= 4 && b <= 7, "shrinks move toward the start");
        }
        assert!(!s.shrink(&(4, 7)).is_empty());
    }

    #[test]
    fn vec_shrinks_respect_min_len_and_get_smaller() {
        let s = prop::collection::vec(0u64..100, 2..10);
        let v = vec![50u64, 60, 70, 80];
        let cands = s.shrink(&v);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.len() >= 2, "candidate below min length: {c:?}");
            assert!(c != &v);
        }
        // Halves come first (most aggressive).
        assert_eq!(cands[0], vec![50, 60]);
        assert_eq!(cands[1], vec![70, 80]);
        // A vec already at min length only shrinks elements in place.
        let at_min = vec![9u64, 0];
        assert!(s.shrink(&at_min).iter().all(|c| c.len() == 2));
    }

    /// End-to-end: a property failing for every `x >= 7` must shrink to the
    /// minimal counterexample 7, and the panic must report it.
    #[test]
    fn shrinks_to_minimal_counterexample() {
        let result = ::std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
                fn fails_at_seven(x in 0u64..1000) {
                    prop_assert!(x < 7, "x = {}", x);
                }
            }
            fails_at_seven();
        });
        let payload = result.expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(msg.contains("property 'fails_at_seven' failed"), "{msg}");
        assert!(
            msg.contains("shrunk args") && msg.contains("(7,)"),
            "minimal counterexample not reached:\n{msg}"
        );
    }

    /// Vec shrinking drives a failing collection property down to the
    /// smallest failing instance: one offending element, minimal value.
    #[test]
    fn shrinks_vec_to_single_offender() {
        let result = ::std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
                fn no_large_elements(v in prop::collection::vec(0u64..100, 0..12)) {
                    prop_assert!(v.iter().all(|&x| x < 42), "large element in {:?}", v);
                }
            }
            no_large_elements();
        });
        let payload = result.expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(
            msg.contains("([42],)"),
            "expected the minimal failing vec [42]:\n{msg}"
        );
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_panic_with_args() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 1, ..ProptestConfig::default() })]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
