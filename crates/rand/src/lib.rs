//! A tiny, dependency-free stand-in for the `rand` crate.
//!
//! The build environment of this repository is fully offline, so the real
//! `rand` cannot be fetched from crates.io. The instance generators only need
//! a deterministic, seedable pseudo-random source with uniform integers and
//! Bernoulli draws, so this crate provides exactly that subset under the same
//! names the generators import ([`rngs::StdRng`], [`SeedableRng`],
//! [`RngExt`]).
//!
//! Determinism is a *feature* here: every generated instance in the
//! reproduction is identified by its seed, and this generator guarantees the
//! same instance bytes on every platform (the real `rand` reserves the right
//! to change `StdRng`'s stream between versions).
//!
//! The generator is splitmix64 — 64-bit state, full period, passes the
//! statistical bar required for test workloads by a wide margin.

#![deny(unsafe_code)]

/// Pseudo-random generators.
pub mod rngs {
    /// A deterministic 64-bit generator (splitmix64).
    ///
    /// Unlike the real `rand`'s `StdRng`, the stream is stable forever; the
    /// reproduction's instances are seed-addressable artifacts.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix so nearby seeds give uncorrelated streams.
        StdRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// The raw 64-bit output stream.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// High-level sampling helpers (the `Rng` extension trait of the real crate,
/// under the name this workspace imports).
pub trait RngExt: RngCore {
    /// Uniform value in `range` (half-open or inclusive integer ranges).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53-bit mantissa draw in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

impl<T: RngCore> RngExt for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform value.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> Self::Output;
}

#[inline]
fn uniform_u64<G: RngCore>(rng: &mut G, span: u64) -> u64 {
    // Multiply-shift bucketing: bias is < 2^-64 · span, irrelevant at
    // test-workload scale and (crucially) deterministic.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for ::core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange for ::core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi - lo) as u64 + 1;
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u64, u32, usize, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(1usize..=3);
            assert!((1..=3).contains(&y));
            let z = rng.random_range(-2i32..=2);
            assert!((-2..=2).contains(&z));
        }
    }

    #[test]
    fn bool_probabilities_roughly_match() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }

    #[test]
    fn uniform_covers_buckets() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((600..1400).contains(&c), "skew: {counts:?}");
        }
    }
}
