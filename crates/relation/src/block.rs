//! Columnar tuple storage: many fixed-arity rows in one flat allocation.
//!
//! [`crate::Tuple`] is the paper-faithful *atomic* tuple — a boxed slice,
//! cloned and moved whole. That model is exactly right for the load
//! accounting but wrong for wall-clock: a relation of a million 2-ary tuples
//! is a million 16-byte heap allocations chased through pointers. A
//! [`TupleBlock`] stores the same rows as one flat `Vec<u64>` with a fixed
//! arity, so iteration is a linear scan, projection writes straight into
//! another block, and sort/dedup permute indices instead of boxing rows.
//!
//! Blocks are the unit of storage and exchange of the **data plane**
//! (`aj_mpc::Net::exchange_rows` moves blocks between servers with a radix
//! counting/scatter pass); the `Tuple` API remains the public surface, with
//! [`TupleBlock::from_tuples`] / [`TupleBlock::to_tuples`] conversions at
//! the boundary.

use crate::tuple::{Tuple, Value};

/// A block of fixed-arity rows stored back-to-back in one flat `Vec<u64>`.
///
/// Row `i` occupies `data[i*arity .. (i+1)*arity]`. The row count is stored
/// explicitly so 0-ary rows (the unit tuple of full-aggregation queries)
/// work too.
///
/// ```
/// use aj_relation::TupleBlock;
///
/// let mut block = TupleBlock::with_capacity(2, 3);
/// block.push_row(&[2, 20]);
/// block.push_row(&[1, 10]);
/// block.push_row(&[2, 20]);
/// assert_eq!(block.len(), 3);
/// assert_eq!(block.row(1), &[1, 10]);
///
/// // In-place sort + dedup, no per-row allocation.
/// block.sort_dedup();
/// assert_eq!(block.len(), 2);
///
/// // Projection writes straight into another block.
/// let mut keys = TupleBlock::new(1);
/// block.project_into(&[0], &mut keys);
/// assert_eq!(keys.iter().map(|r| r[0]).collect::<Vec<_>>(), vec![1, 2]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct TupleBlock {
    arity: usize,
    rows: usize,
    data: Vec<Value>,
}

impl TupleBlock {
    /// An empty block of the given arity.
    pub fn new(arity: usize) -> Self {
        TupleBlock {
            arity,
            rows: 0,
            data: Vec::new(),
        }
    }

    /// An empty block with room for `rows` rows.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        TupleBlock {
            arity,
            rows: 0,
            data: Vec::with_capacity(arity * rows),
        }
    }

    /// Wrap an existing flat buffer (`values.len()` must be a multiple of
    /// `arity`; for `arity == 0` the buffer must be empty and the block has
    /// zero rows — use [`TupleBlock::push_empty_rows`] to add 0-ary rows).
    ///
    /// # Panics
    /// Panics if the buffer length is not a whole number of rows.
    pub fn from_values(arity: usize, values: Vec<Value>) -> Self {
        let rows = if arity == 0 {
            assert!(values.is_empty(), "0-ary block from non-empty buffer");
            0
        } else {
            assert_eq!(values.len() % arity, 0, "partial row in flat buffer");
            values.len() / arity
        };
        TupleBlock {
            arity,
            rows,
            data: values,
        }
    }

    /// Build a block from tuples (all must have arity `arity`).
    pub fn from_tuples<'a>(arity: usize, tuples: impl IntoIterator<Item = &'a Tuple>) -> Self {
        let mut b = TupleBlock::new(arity);
        for t in tuples {
            b.push_row(t.values());
        }
        b
    }

    /// Materialize every row as an owned [`Tuple`] (the boundary back to the
    /// atomic-tuple API; allocates one box per row by definition).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.iter().map(Tuple::new).collect()
    }

    /// Row width.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if the block holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The flat value buffer (row-major).
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.data
    }

    /// Take the flat buffer out of the block.
    pub fn into_values(self) -> Vec<Value> {
        self.data
    }

    /// Row `i` as a value slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        debug_assert!(i < self.rows);
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics (debug) if `row.len() != self.arity()`.
    #[inline]
    pub fn push_row(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.arity, "row arity mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Append `n` 0-ary rows (only meaningful for `arity == 0`).
    ///
    /// # Panics
    /// Panics if the block is not 0-ary.
    pub fn push_empty_rows(&mut self, n: usize) {
        assert_eq!(self.arity, 0, "push_empty_rows on a non-0-ary block");
        self.rows += n;
    }

    /// Append every row of `other` (arities must match).
    pub fn extend_from_block(&mut self, other: &TupleBlock) {
        assert_eq!(self.arity, other.arity, "block arity mismatch");
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Remove all rows, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
        self.rows = 0;
    }

    /// Iterate over rows as value slices (no allocation).
    pub fn iter(&self) -> BlockIter<'_> {
        BlockIter { block: self, i: 0 }
    }

    /// Project every row onto `positions` (in that order), appending the
    /// results to `out`. `out.arity()` must equal `positions.len()`; no
    /// per-row allocation happens — this is the block form of
    /// [`Tuple::project`].
    ///
    /// # Panics
    /// Panics (debug) on arity mismatch or an out-of-range position.
    pub fn project_into(&self, positions: &[usize], out: &mut TupleBlock) {
        debug_assert_eq!(out.arity, positions.len(), "projection arity mismatch");
        out.data.reserve(self.rows * positions.len());
        for i in 0..self.rows {
            let row = &self.data[i * self.arity..(i + 1) * self.arity];
            for &p in positions {
                out.data.push(row[p]);
            }
        }
        out.rows += self.rows;
    }

    /// Sort rows lexicographically **in place** at every arity. Rows are
    /// never boxed: common arities (≤ 4) sort the flat buffer directly as
    /// fixed-width chunks; wider rows sort a row-index permutation and then
    /// apply it by cycle-following row moves through a single row-sized
    /// scratch buffer — peak extra memory is one row plus the permutation,
    /// never a second copy of the block.
    pub fn sort_rows(&mut self) {
        fn sort_fixed<const N: usize>(data: &mut [Value], rows: usize) {
            // SAFETY: `data` holds exactly `rows` back-to-back `[Value; N]`
            // rows (block invariant), and `[u64; N]` has the same layout as
            // `N` consecutive `u64`s.
            let chunks: &mut [[Value; N]] =
                unsafe { std::slice::from_raw_parts_mut(data.as_mut_ptr().cast(), rows) };
            chunks.sort_unstable();
        }
        match self.arity {
            0 => {}
            1 => self.data.sort_unstable(),
            2 => sort_fixed::<2>(&mut self.data, self.rows),
            3 => sort_fixed::<3>(&mut self.data, self.rows),
            4 => sort_fixed::<4>(&mut self.data, self.rows),
            a => {
                // order[i] = index of the row that belongs at position i.
                let mut order: Vec<u32> = (0..self.rows as u32).collect();
                {
                    let data = &self.data;
                    order.sort_unstable_by(|&x, &y| {
                        data[x as usize * a..(x as usize + 1) * a]
                            .cmp(&data[y as usize * a..(y as usize + 1) * a])
                    });
                }
                let mut scratch = vec![0u64; a];
                let mut placed = vec![false; self.rows];
                for start in 0..self.rows {
                    if placed[start] {
                        continue;
                    }
                    placed[start] = true;
                    if order[start] as usize == start {
                        continue;
                    }
                    // Rotate the cycle through `start`: hold the evicted row
                    // in scratch, pull each slot's source row forward, and
                    // drop the held row into the cycle's last slot.
                    scratch.copy_from_slice(&self.data[start * a..(start + 1) * a]);
                    let mut dst = start;
                    loop {
                        let src = order[dst] as usize;
                        if src == start {
                            self.data[dst * a..(dst + 1) * a].copy_from_slice(&scratch);
                            break;
                        }
                        self.data.copy_within(src * a..(src + 1) * a, dst * a);
                        placed[src] = true;
                        dst = src;
                    }
                }
            }
        }
    }

    /// Remove adjacent duplicate rows in place (sort first for global
    /// dedup). Compacts with `copy_within`; no allocation.
    pub fn dedup_rows(&mut self) {
        if self.rows <= 1 {
            return;
        }
        if self.arity == 0 {
            self.rows = 1;
            return;
        }
        let a = self.arity;
        let mut kept = 1usize; // row 0 always stays
        for i in 1..self.rows {
            let (prev, cur) = (kept - 1, i);
            let duplicate = {
                let p = &self.data[prev * a..(prev + 1) * a];
                let c = &self.data[cur * a..(cur + 1) * a];
                p == c
            };
            if !duplicate {
                if kept != i {
                    self.data.copy_within(i * a..(i + 1) * a, kept * a);
                }
                kept += 1;
            }
        }
        self.data.truncate(kept * a);
        self.rows = kept;
    }

    /// Sort and globally dedup (set semantics) in one call.
    pub fn sort_dedup(&mut self) {
        self.sort_rows();
        self.dedup_rows();
    }
}

impl std::fmt::Debug for TupleBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TupleBlock[{}×{}]{{", self.rows, self.arity)?;
        for (i, row) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            if i >= 8 {
                write!(f, "…")?;
                break;
            }
            write!(f, "{row:?}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the rows of a [`TupleBlock`] as value slices.
pub struct BlockIter<'a> {
    block: &'a TupleBlock,
    i: usize,
}

impl<'a> Iterator for BlockIter<'a> {
    type Item = &'a [Value];

    #[inline]
    fn next(&mut self) -> Option<&'a [Value]> {
        if self.i >= self.block.rows {
            return None;
        }
        let a = self.block.arity;
        let r = &self.block.data[self.i * a..(self.i + 1) * a];
        self.i += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.block.rows - self.i;
        (left, Some(left))
    }
}

impl ExactSizeIterator for BlockIter<'_> {}

impl<'a> IntoIterator for &'a TupleBlock {
    type Item = &'a [Value];
    type IntoIter = BlockIter<'a>;
    fn into_iter(self) -> BlockIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(rows: &[&[Value]]) -> TupleBlock {
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut b = TupleBlock::new(arity);
        for r in rows {
            b.push_row(r);
        }
        b
    }

    #[test]
    fn push_and_iterate() {
        let b = block(&[&[1, 2], &[3, 4], &[5, 6]]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.row(1), &[3, 4]);
        let rows: Vec<&[Value]> = b.iter().collect();
        assert_eq!(rows, vec![&[1u64, 2][..], &[3, 4], &[5, 6]]);
        assert_eq!(b.iter().len(), 3);
    }

    #[test]
    fn tuple_round_trip() {
        let tuples = vec![Tuple::from([9, 1]), Tuple::from([2, 8])];
        let b = TupleBlock::from_tuples(2, &tuples);
        assert_eq!(b.to_tuples(), tuples);
    }

    #[test]
    fn project_into_reorders_and_appends() {
        let b = block(&[&[10, 20, 30], &[40, 50, 60]]);
        let mut out = TupleBlock::new(2);
        b.project_into(&[2, 0], &mut out);
        assert_eq!(out.row(0), &[30, 10]);
        assert_eq!(out.row(1), &[60, 40]);
        // Appending again grows the same block.
        b.project_into(&[2, 0], &mut out);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn sort_and_dedup_match_tuple_semantics() {
        let mut b = block(&[&[3, 1], &[1, 2], &[3, 1], &[1, 1]]);
        b.sort_dedup();
        let got = b.to_tuples();
        let mut want = vec![
            Tuple::from([3, 1]),
            Tuple::from([1, 2]),
            Tuple::from([3, 1]),
            Tuple::from([1, 1]),
        ];
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want);
    }

    #[test]
    fn sort_arity_one_and_zero() {
        let mut b = block(&[&[5], &[1], &[5], &[3]]);
        b.sort_dedup();
        assert_eq!(b.values(), &[1, 3, 5]);
        let mut z = TupleBlock::new(0);
        z.push_empty_rows(4);
        assert_eq!(z.len(), 4);
        z.sort_dedup();
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn wide_arity_sorts_in_place() {
        // Arity 6 exercises the cycle-following permutation path.
        let n = 257u64;
        let mut b = TupleBlock::new(6);
        for i in 0..n {
            let x = (i * 131) % n; // a full cycle over 0..n, descending-ish
            b.push_row(&[x % 7, x % 5, x, x + 1, x + 2, x + 3]);
        }
        let mut want = b.to_tuples();
        b.sort_rows();
        want.sort_unstable();
        assert_eq!(b.to_tuples(), want);
        b.dedup_rows();
        want.dedup();
        assert_eq!(b.to_tuples(), want);
    }

    #[test]
    fn from_values_and_back() {
        let b = TupleBlock::from_values(2, vec![1, 2, 3, 4]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.into_values(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "partial row")]
    fn from_values_rejects_partial_rows() {
        TupleBlock::from_values(2, vec![1, 2, 3]);
    }

    #[test]
    fn extend_and_clear() {
        let mut a = block(&[&[1, 2]]);
        let b = block(&[&[3, 4], &[5, 6]]);
        a.extend_from_block(&b);
        assert_eq!(a.len(), 3);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.arity(), 2);
    }

    #[test]
    fn dedup_keeps_non_adjacent_duplicates_without_sort() {
        let mut b = block(&[&[1], &[2], &[1]]);
        b.dedup_rows();
        assert_eq!(b.len(), 3, "dedup is adjacent-only, like Vec::dedup");
    }

    #[test]
    fn debug_is_bounded() {
        let mut b = TupleBlock::new(1);
        for i in 0..100 {
            b.push_row(&[i]);
        }
        let s = format!("{b:?}");
        assert!(s.contains('…'));
    }
}
