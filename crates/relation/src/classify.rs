//! Join classification (Section 1.4) and the attribute forest (Section 3).
//!
//! The classes form a strict chain (Figure 1 of the paper):
//! tall-flat ⊂ hierarchical ⊂ r-hierarchical ⊂ acyclic.

use crate::query::{Attr, Query};
use crate::sets::EdgeSet;

/// The finest class of the paper's taxonomy a query belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JoinClass {
    /// Tall-flat (Section 1.4, \[26\]); implies hierarchical.
    TallFlat,
    /// Hierarchical but not tall-flat.
    Hierarchical,
    /// r-hierarchical (reduced query is hierarchical) but not hierarchical.
    RHierarchical,
    /// α-acyclic but not r-hierarchical.
    Acyclic,
    /// Cyclic.
    Cyclic,
}

impl std::fmt::Display for JoinClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JoinClass::TallFlat => "tall-flat",
            JoinClass::Hierarchical => "hierarchical",
            JoinClass::RHierarchical => "r-hierarchical",
            JoinClass::Acyclic => "acyclic",
            JoinClass::Cyclic => "cyclic",
        };
        f.write_str(s)
    }
}

/// Is the query hierarchical? For every pair of attributes `x, y`:
/// `E_x ⊆ E_y`, `E_y ⊆ E_x`, or `E_x ∩ E_y = ∅`.
pub fn is_hierarchical(q: &Query) -> bool {
    let n = q.n_attrs();
    let e: Vec<EdgeSet> = (0..n).map(|x| q.edges_containing(x)).collect();
    for x in 0..n {
        for y in (x + 1)..n {
            let (ex, ey) = (e[x], e[y]);
            if ex.is_empty() || ey.is_empty() {
                continue;
            }
            if !(ex.is_subset(ey) || ey.is_subset(ex) || ex.intersect(ey).is_empty()) {
                return false;
            }
        }
    }
    true
}

/// Is the query r-hierarchical (its reduced hypergraph is hierarchical)?
pub fn is_r_hierarchical(q: &Query) -> bool {
    is_hierarchical(&q.reduce().0)
}

/// Is the query tall-flat? There must be an attribute ordering
/// `x1, …, xh, y1, …, yl` with `E_{x1} ⊇ … ⊇ E_{xh}`, `E_{xh} ⊇ E_{yj}`,
/// and `|E_{yj}| = 1` for all `j`.
pub fn is_tall_flat(q: &Query) -> bool {
    // Attributes that occur at all.
    let attrs: Vec<Attr> = (0..q.n_attrs())
        .filter(|&x| !q.edges_containing(x).is_empty())
        .collect();
    if attrs.is_empty() {
        // No attributes (degenerate); treat as tall-flat.
        return true;
    }
    let esets: Vec<EdgeSet> = attrs.iter().map(|&x| q.edges_containing(x)).collect();

    // Every attribute occurring in ≥ 2 edges must be on the stem, so the
    // multi-occurrence attribute sets must form a chain under ⊇.
    let mut stem: Vec<EdgeSet> = esets.iter().copied().filter(|s| s.len() >= 2).collect();
    stem.sort_by_key(|s| std::cmp::Reverse(s.len()));
    for w in stem.windows(2) {
        if !w[0].is_superset(w[1]) {
            return false;
        }
    }
    // Candidate bottoms of the stem: the chain bottom, or the chain bottom
    // extended by one single-occurrence attribute (which is then x_h).
    let chain_bottom = stem.last().copied();
    let mut candidates: Vec<EdgeSet> = Vec::new();
    match chain_bottom {
        Some(b) => {
            candidates.push(b);
            for &s in &esets {
                if s.len() == 1 && s.is_subset(b) {
                    candidates.push(s);
                }
            }
        }
        None => {
            // No multi-occurrence attribute: any single attribute can be the
            // whole stem.
            for &s in &esets {
                candidates.push(s);
            }
        }
    }
    // The leaves are all single-occurrence attributes except possibly the one
    // promoted to the stem bottom; each leaf y needs E_y ⊆ E_{xh}.
    candidates.into_iter().any(|bottom| {
        // Stem chain must sit above `bottom`.
        if let Some(b) = chain_bottom {
            if !b.is_superset(bottom) {
                return false;
            }
        }
        let mut promoted = false;
        esets.iter().all(|&s| {
            if s.len() >= 2 {
                true // on the stem by the chain check
            } else if s == bottom && !promoted && s.len() == 1 && chain_bottom != Some(s) {
                // At most one single-occurrence attribute plays x_h.
                // (Several attrs can share the same singleton E; only one
                // needs to be promoted, the rest are leaves of x_h's edge.)
                promoted = true;
                true
            } else {
                s.is_subset(bottom)
            }
        })
    })
}

/// Classify a query into the paper's taxonomy (Figure 1).
pub fn classify(q: &Query) -> JoinClass {
    if !q.is_acyclic() {
        return JoinClass::Cyclic;
    }
    if is_hierarchical(q) {
        if is_tall_flat(q) {
            return JoinClass::TallFlat;
        }
        return JoinClass::Hierarchical;
    }
    if is_r_hierarchical(q) {
        return JoinClass::RHierarchical;
    }
    JoinClass::Acyclic
}

/// One node of an [`AttributeForest`]: a group of attributes sharing the same
/// edge set `E_x`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestNode {
    /// The attributes collapsed into this node (same `E_x`).
    pub attrs: Vec<Attr>,
    /// The common edge set.
    pub edges: EdgeSet,
    /// Parent node index (`None` for roots).
    pub parent: Option<usize>,
    /// Child node indices.
    pub children: Vec<usize>,
}

/// The attribute forest of a hierarchical join (Section 3): attribute `x` is
/// a descendant of `y` iff `E_x ⊆ E_y`. Attributes with identical edge sets
/// are merged into one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeForest {
    /// The forest nodes (merged attribute classes).
    pub nodes: Vec<ForestNode>,
    /// Indices of the root nodes.
    pub roots: Vec<usize>,
}

impl AttributeForest {
    /// Build the forest. Returns `None` if the query is not hierarchical.
    pub fn build(q: &Query) -> Option<AttributeForest> {
        if !is_hierarchical(q) {
            return None;
        }
        // Group attributes by identical E_x.
        let mut groups: Vec<(EdgeSet, Vec<Attr>)> = Vec::new();
        for x in 0..q.n_attrs() {
            let ex = q.edges_containing(x);
            if ex.is_empty() {
                continue;
            }
            match groups.iter_mut().find(|(s, _)| *s == ex) {
                Some((_, v)) => v.push(x),
                None => groups.push((ex, vec![x])),
            }
        }
        // Parent = the strictly-larger superset group with the fewest edges.
        let mut nodes: Vec<ForestNode> = groups
            .iter()
            .map(|(s, attrs)| ForestNode {
                attrs: attrs.clone(),
                edges: *s,
                parent: None,
                children: Vec::new(),
            })
            .collect();
        for i in 0..nodes.len() {
            let mut best: Option<usize> = None;
            for j in 0..nodes.len() {
                if i == j {
                    continue;
                }
                let (si, sj) = (nodes[i].edges, nodes[j].edges);
                if si.is_subset(sj) && si != sj {
                    best = match best {
                        Some(b) if nodes[b].edges.len() <= sj.len() => Some(b),
                        _ => Some(j),
                    };
                }
            }
            nodes[i].parent = best;
        }
        for i in 0..nodes.len() {
            if let Some(p) = nodes[i].parent {
                nodes[p].children.push(i);
            }
        }
        let roots = (0..nodes.len())
            .filter(|&i| nodes[i].parent.is_none())
            .collect();
        Some(AttributeForest { nodes, roots })
    }

    /// Number of trees in the forest.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// The edges of the tree rooted at forest node `root`: the union of edge
    /// sets in that subtree (equivalently, the root's edge set, since every
    /// descendant's edges are a subset).
    pub fn tree_edges(&self, root: usize) -> EdgeSet {
        self.nodes[root].edges
    }

    /// Pretty-print with attribute names from `q`.
    pub fn render(&self, q: &Query) -> String {
        fn rec(f: &AttributeForest, q: &Query, node: usize, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            let names: Vec<&str> = f.nodes[node]
                .attrs
                .iter()
                .map(|&a| q.attr_name(a))
                .collect();
            out.push_str(&format!("{pad}{}\n", names.join(",")));
            for &c in &f.nodes[node].children {
                rec(f, q, c, depth + 1, out);
            }
        }
        let mut out = String::new();
        for &r in &self.roots {
            rec(self, q, r, 0, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;

    fn q(build: impl FnOnce(&mut QueryBuilder)) -> Query {
        let mut b = QueryBuilder::new();
        build(&mut b);
        b.build()
    }

    /// Q1 from Section 3: tall-flat.
    fn tall_flat_q1() -> Query {
        q(|b| {
            b.relation("R1", &["x1"]);
            b.relation("R2", &["x1", "x2"]);
            b.relation("R3", &["x1", "x2", "x3"]);
            b.relation("R4", &["x1", "x2", "x3", "x4"]);
            b.relation("R5", &["x1", "x2", "x3", "x5"]);
            b.relation("R6", &["x1", "x2", "x3", "x6"]);
        })
    }

    /// Q2 from Section 3: hierarchical, not tall-flat.
    fn hierarchical_q2() -> Query {
        q(|b| {
            b.relation("R1", &["x1", "x2"]);
            b.relation("R2", &["x1", "x3", "x4"]);
            b.relation("R3", &["x1", "x3", "x5"]);
        })
    }

    #[test]
    fn q1_is_tall_flat() {
        assert_eq!(classify(&tall_flat_q1()), JoinClass::TallFlat);
    }

    #[test]
    fn q2_is_hierarchical_not_tall_flat() {
        let qq = hierarchical_q2();
        assert!(is_hierarchical(&qq));
        assert!(!is_tall_flat(&qq));
        assert_eq!(classify(&qq), JoinClass::Hierarchical);
    }

    #[test]
    fn r_hierarchical_example() {
        // R1(A) ⋈ R2(A,B) ⋈ R3(B): r-hierarchical but not hierarchical
        // (paper, Section 1.4).
        let qq = q(|b| {
            b.relation("R1", &["A"]);
            b.relation("R2", &["A", "B"]);
            b.relation("R3", &["B"]);
        });
        assert!(!is_hierarchical(&qq));
        assert!(is_r_hierarchical(&qq));
        assert_eq!(classify(&qq), JoinClass::RHierarchical);
    }

    #[test]
    fn line3_is_acyclic_only() {
        let qq = q(|b| {
            b.relation("R1", &["A", "B"]);
            b.relation("R2", &["B", "C"]);
            b.relation("R3", &["C", "D"]);
        });
        assert!(!is_r_hierarchical(&qq));
        assert_eq!(classify(&qq), JoinClass::Acyclic);
    }

    #[test]
    fn line2_binary_join_is_r_hierarchical() {
        // R1(A,B) ⋈ R2(B,C): reduced = itself; E_A={0},E_B={0,1},E_C={1}:
        // hierarchical. Not tall-flat? stem must be B (deg 2); leaves A, C:
        // E_A={0} ⊆ E_B={0,1} ✓, E_C={1} ⊆ {0,1} ✓ → tall-flat.
        let qq = q(|b| {
            b.relation("R1", &["A", "B"]);
            b.relation("R2", &["B", "C"]);
        });
        assert_eq!(classify(&qq), JoinClass::TallFlat);
    }

    #[test]
    fn triangle_is_cyclic() {
        let qq = q(|b| {
            b.relation("R1", &["B", "C"]);
            b.relation("R2", &["A", "C"]);
            b.relation("R3", &["A", "B"]);
        });
        assert_eq!(classify(&qq), JoinClass::Cyclic);
    }

    #[test]
    fn cartesian_product_is_hierarchical_not_tall_flat() {
        // R1(A) × R2(B) × R3(C): every E_x disjoint → hierarchical. Not
        // tall-flat for m ≥ 2 (no x_h can dominate the others' edges).
        let qq = q(|b| {
            b.relation("R1", &["A"]);
            b.relation("R2", &["B"]);
            b.relation("R3", &["C"]);
        });
        assert!(is_hierarchical(&qq));
        assert!(!is_tall_flat(&qq));
        assert_eq!(classify(&qq), JoinClass::Hierarchical);
    }

    #[test]
    fn single_relation_is_tall_flat() {
        let qq = q(|b| {
            b.relation("R", &["A", "B", "C"]);
        });
        assert_eq!(classify(&qq), JoinClass::TallFlat);
    }

    #[test]
    fn q2_extended_is_r_hierarchical() {
        // Q2 ⋈ R4(x3,x5) ⋈ R5(x5) from Section 3: r-hierarchical, not
        // hierarchical.
        let qq = q(|b| {
            b.relation("R1", &["x1", "x2"]);
            b.relation("R2", &["x1", "x3", "x4"]);
            b.relation("R3", &["x1", "x3", "x5"]);
            b.relation("R4", &["x3", "x5"]);
            b.relation("R5", &["x5"]);
        });
        assert!(!is_hierarchical(&qq));
        assert_eq!(classify(&qq), JoinClass::RHierarchical);
    }

    #[test]
    fn forest_of_q1_is_a_stem_with_leaves() {
        let qq = tall_flat_q1();
        let f = AttributeForest::build(&qq).unwrap();
        assert_eq!(f.n_trees(), 1);
        // x1 at root (E = all 6 edges).
        let root = &f.nodes[f.roots[0]];
        assert_eq!(root.attrs, vec![qq.attr_by_name("x1").unwrap()]);
        assert_eq!(root.edges.len(), 6);
        let rendered = f.render(&qq);
        assert!(rendered.starts_with("x1\n"));
    }

    #[test]
    fn forest_of_q2_matches_figure2() {
        let qq = hierarchical_q2();
        let f = AttributeForest::build(&qq).unwrap();
        assert_eq!(f.n_trees(), 1);
        let root = &f.nodes[f.roots[0]];
        assert_eq!(root.attrs, vec![qq.attr_by_name("x1").unwrap()]);
        // Children: x2 (edge {0}) and x3 (edges {1,2}).
        assert_eq!(root.children.len(), 2);
        let x3 = qq.attr_by_name("x3").unwrap();
        let x3_node = f
            .nodes
            .iter()
            .find(|n| n.attrs.contains(&x3))
            .expect("x3 node");
        assert_eq!(x3_node.children.len(), 2); // x4 and x5
    }

    #[test]
    fn forest_of_cartesian_has_one_tree_per_set() {
        let qq = q(|b| {
            b.relation("R1", &["A"]);
            b.relation("R2", &["B"]);
        });
        let f = AttributeForest::build(&qq).unwrap();
        assert_eq!(f.n_trees(), 2);
    }

    #[test]
    fn forest_rejects_non_hierarchical() {
        let qq = q(|b| {
            b.relation("R1", &["A", "B"]);
            b.relation("R2", &["B", "C"]);
            b.relation("R3", &["C", "D"]);
        });
        assert!(AttributeForest::build(&qq).is_none());
    }

    #[test]
    fn class_chain_is_strict() {
        // Witnesses for every strict inclusion of Figure 1.
        assert_eq!(classify(&tall_flat_q1()), JoinClass::TallFlat);
        assert_eq!(classify(&hierarchical_q2()), JoinClass::Hierarchical);
        let r_h = q(|b| {
            b.relation("R1", &["A"]);
            b.relation("R2", &["A", "B"]);
            b.relation("R3", &["B"]);
        });
        assert_eq!(classify(&r_h), JoinClass::RHierarchical);
        let line3 = q(|b| {
            b.relation("R1", &["A", "B"]);
            b.relation("R2", &["B", "C"]);
            b.relation("R3", &["C", "D"]);
        });
        assert_eq!(classify(&line3), JoinClass::Acyclic);
    }
}
