//! Edge covers (Lemma 1: acyclic joins have integral edge-cover number).

use crate::query::Query;
use crate::sets::{AttrSet, EdgeSet};

/// A minimum edge cover: the smallest set of edges whose union covers every
/// occurring attribute. Exhaustive over subsets (query size is constant).
pub fn min_edge_cover(q: &Query) -> Vec<usize> {
    let m = q.n_edges();
    let target: AttrSet = q.all_attrs();
    let mut best: Option<EdgeSet> = None;
    for s in EdgeSet::all(m).subsets() {
        if s.is_empty() {
            continue;
        }
        if let Some(b) = best {
            if s.len() >= b.len() {
                continue;
            }
        }
        if q.attrs_of_edges(s) == target {
            best = Some(s);
        }
    }
    best.expect("every query covers itself").to_vec()
}

/// The integral edge-cover number `|C|`.
pub fn edge_cover_number(q: &Query) -> usize {
    min_edge_cover(q).len()
}

/// The GYO-style cover of Lemma 1's proof: repeatedly (a) drop an edge
/// contained in another, (b) take an edge owning a private attribute into the
/// cover and delete its attributes. For acyclic queries this produces a
/// minimum cover whose edges each own a *unique attribute* — the property the
/// Theorem-4 hard-instance construction relies on.
pub fn gyo_cover(q: &Query) -> Option<Vec<usize>> {
    if !q.is_acyclic() {
        return None;
    }
    let m = q.n_edges();
    let mut alive: Vec<bool> = vec![true; m];
    let mut covered = AttrSet::EMPTY;
    let mut cover = Vec::new();
    let mut remaining: Vec<AttrSet> = q.edges().iter().map(|e| e.attr_set()).collect();
    loop {
        // Remove attributes already covered.
        for s in remaining.iter_mut() {
            *s = s.minus(covered);
        }
        // Drop empty or contained edges.
        let mut changed = false;
        for e in 0..m {
            if !alive[e] {
                continue;
            }
            if remaining[e].is_empty() {
                alive[e] = false;
                changed = true;
                continue;
            }
            for o in 0..m {
                if o != e
                    && alive[o]
                    && remaining[e].is_subset(remaining[o])
                    && (remaining[e] != remaining[o] || e > o)
                {
                    alive[e] = false;
                    changed = true;
                    break;
                }
            }
        }
        if changed {
            continue;
        }
        // Find an edge with a private (unique) attribute.
        let mut picked = None;
        'outer: for e in 0..m {
            if !alive[e] {
                continue;
            }
            for x in remaining[e].iter() {
                let private = (0..m).all(|o| o == e || !alive[o] || !remaining[o].contains(x));
                if private {
                    picked = Some(e);
                    break 'outer;
                }
            }
        }
        match picked {
            Some(e) => {
                cover.push(e);
                covered = covered.union(q.edges()[e].attr_set());
                alive[e] = false;
            }
            None => {
                // All attributes covered?
                if (0..m).all(|e| !alive[e]) {
                    return Some(cover);
                }
                // Acyclic queries always yield a private attribute after
                // reduction (GYO); reaching here means a bug.
                unreachable!("GYO cover stuck on acyclic query");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;

    fn q(build: impl FnOnce(&mut QueryBuilder)) -> Query {
        let mut b = QueryBuilder::new();
        build(&mut b);
        b.build()
    }

    #[test]
    fn line3_cover_is_two() {
        let qq = q(|b| {
            b.relation("R1", &["A", "B"]);
            b.relation("R2", &["B", "C"]);
            b.relation("R3", &["C", "D"]);
        });
        // {R1, R3} covers {A,B,C,D}.
        assert_eq!(edge_cover_number(&qq), 2);
        let c = min_edge_cover(&qq);
        assert_eq!(c, vec![0, 2]);
    }

    #[test]
    fn single_relation_cover() {
        let qq = q(|b| {
            b.relation("R", &["A", "B"]);
        });
        assert_eq!(edge_cover_number(&qq), 1);
    }

    #[test]
    fn cartesian_cover_is_m() {
        let qq = q(|b| {
            b.relation("R1", &["A"]);
            b.relation("R2", &["B"]);
            b.relation("R3", &["C"]);
        });
        assert_eq!(edge_cover_number(&qq), 3);
    }

    /// Lemma 1 sanity: the GYO cover matches the exhaustive minimum on a
    /// corpus of acyclic queries.
    #[test]
    fn gyo_cover_is_minimum_on_corpus() {
        let corpus = vec![
            q(|b| {
                b.relation("R1", &["A", "B"]);
                b.relation("R2", &["B", "C"]);
                b.relation("R3", &["C", "D"]);
            }),
            q(|b| {
                b.relation("R1", &["A"]);
                b.relation("R2", &["A", "B"]);
                b.relation("R3", &["B"]);
            }),
            q(|b| {
                b.relation("R1", &["X", "A"]);
                b.relation("R2", &["X", "B"]);
                b.relation("R3", &["X", "C"]);
            }),
            q(|b| {
                b.relation("R1", &["A", "B", "C"]);
                b.relation("R2", &["C", "D"]);
                b.relation("R3", &["D", "E", "F"]);
                b.relation("R4", &["F", "G"]);
            }),
        ];
        for qq in &corpus {
            let g = gyo_cover(qq).expect("acyclic");
            assert_eq!(
                g.len(),
                edge_cover_number(qq),
                "GYO cover suboptimal on {qq}"
            );
            // Cover really covers.
            let covered = g.iter().fold(AttrSet::EMPTY, |acc, &e| {
                acc.union(qq.edges()[e].attr_set())
            });
            assert_eq!(covered, qq.all_attrs());
        }
    }

    #[test]
    fn gyo_cover_rejects_cyclic() {
        let qq = q(|b| {
            b.relation("R1", &["B", "C"]);
            b.relation("R2", &["A", "C"]);
            b.relation("R3", &["A", "B"]);
        });
        assert!(gyo_cover(&qq).is_none());
    }
}
