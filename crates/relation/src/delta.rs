//! Signed update batches and counted materializations — the data model of
//! incremental view maintenance.
//!
//! A live workload is not a sequence of fresh databases but a long-lived
//! instance receiving small batches of **signed** changes: inserted and
//! deleted tuples, per relation. [`UpdateBatch`] is that unit of change;
//! [`RelationDelta`] is one relation's slice of it. Both are plain driver
//! data — the delta *algorithms* live in `aj_core::delta`, which routes the
//! signed tuples through the block exchange and joins them against cached
//! state.
//!
//! The weight algebra is the **signed counting ring** ℤ
//! ([`crate::semiring::ZRing`]): an insert carries `+1`, a delete `-1`, a
//! join result the product of its inputs' weights, and a counted
//! materialization sums weights per output tuple. Because the counts are
//! exact, a deletion is a pure decrement — no re-derivation scan is ever
//! needed to decide whether an output tuple still has support. Weights ride
//! along the join algorithms encoded into a trailing `u64` column
//! ([`encode_weight`] / [`decode_weight`]).
//!
//! ```
//! use aj_relation::delta::UpdateBatch;
//! use aj_relation::{database_from_rows, QueryBuilder, Tuple};
//!
//! let mut b = QueryBuilder::new();
//! b.relation("R1", &["A", "B"]);
//! b.relation("R2", &["B", "C"]);
//! let q = b.build();
//! let mut db = database_from_rows(&q, &[vec![vec![1, 10]], vec![vec![10, 7]]]);
//!
//! let mut batch = UpdateBatch::empty(q.n_edges());
//! batch.insert(0, Tuple::from([2, 10]));
//! batch.delete(1, Tuple::from([10, 7]));
//! assert_eq!(batch.size(), 2);
//! batch.apply_to(&mut db);
//! assert_eq!(db.relations[0].len(), 2);
//! assert_eq!(db.relations[1].len(), 0);
//! ```

use crate::query::Database;
use crate::tuple::Tuple;

/// The signed changes of one relation within an [`UpdateBatch`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationDelta {
    /// Tuples added to the relation (weight `+1` each).
    pub inserts: Vec<Tuple>,
    /// Tuples removed from the relation (weight `-1` each).
    pub deletes: Vec<Tuple>,
}

impl RelationDelta {
    /// An empty delta.
    pub fn empty() -> Self {
        RelationDelta::default()
    }

    /// Number of signed tuples (`|inserts| + |deletes|`).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Does the delta change nothing?
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Iterate `(tuple, weight)` pairs: deletes first (weight `-1`), then
    /// inserts (weight `+1`). Processing deletions before insertions within
    /// one relation makes a batch that replaces a tuple (delete + insert of
    /// the same key) behave like a net update regardless of internal order.
    pub fn signed(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.deletes
            .iter()
            .map(|t| (t, -1i64))
            .chain(self.inserts.iter().map(|t| (t, 1i64)))
    }
}

/// One batch of signed tuple changes against a registered view's base
/// relations: `deltas[e]` holds the changes of query edge `e`.
///
/// Set-semantics contract (matching the rest of the workspace): a batch
/// should delete only tuples currently present and insert only tuples
/// currently absent. `aj_core::delta` maintains exact signed counts, so a
/// violating batch degrades gracefully (counts go above 1 or below 0 on the
/// *base* bookkeeping) but the materialization then reflects the multiset
/// reading of the base, not the set one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateBatch {
    /// One delta per query edge, aligned by edge index.
    pub deltas: Vec<RelationDelta>,
}

impl UpdateBatch {
    /// An all-empty batch over `m` relations.
    pub fn empty(m: usize) -> Self {
        UpdateBatch {
            deltas: vec![RelationDelta::empty(); m],
        }
    }

    /// Number of relations the batch spans.
    pub fn n_relations(&self) -> usize {
        self.deltas.len()
    }

    /// Queue an insertion of `t` into relation `e`.
    pub fn insert(&mut self, e: usize, t: Tuple) {
        self.deltas[e].inserts.push(t);
    }

    /// Queue a deletion of `t` from relation `e`.
    pub fn delete(&mut self, e: usize, t: Tuple) {
        self.deltas[e].deletes.push(t);
    }

    /// `|Δ|`: the total number of signed tuples across all relations — the
    /// `IN` of the maintenance pass, which the recompute-vs-maintain pricing
    /// plugs into the closed-form bounds.
    pub fn size(&self) -> u64 {
        self.deltas.iter().map(|d| d.len() as u64).sum()
    }

    /// Does the batch change nothing?
    pub fn is_empty(&self) -> bool {
        self.deltas.iter().all(RelationDelta::is_empty)
    }

    /// Apply the batch to an in-memory database (the driver-side mirror used
    /// by oracles and generators): deletes remove one matching occurrence,
    /// inserts append. Relations are re-normalized (sorted, deduped) so the
    /// result is a canonical set-semantics instance.
    ///
    /// # Panics
    /// Panics if the batch spans a different number of relations than `db`.
    pub fn apply_to(&self, db: &mut Database) {
        assert_eq!(
            self.deltas.len(),
            db.relations.len(),
            "batch/database arity mismatch"
        );
        for (delta, rel) in self.deltas.iter().zip(&mut db.relations) {
            if delta.is_empty() {
                continue;
            }
            if !delta.deletes.is_empty() {
                // One occurrence removed per listed tuple: count the victims,
                // then retain in one linear pass.
                let mut dead: crate::fxhash::FxHashMap<&Tuple, usize> =
                    crate::fxhash::fx_map_with_capacity(delta.deletes.len());
                for t in &delta.deletes {
                    *dead.entry(t).or_insert(0) += 1;
                }
                rel.tuples.retain(|t| match dead.get_mut(t) {
                    Some(c) if *c > 0 => {
                        *c -= 1;
                        false
                    }
                    _ => true,
                });
            }
            rel.tuples.extend(delta.inserts.iter().cloned());
            rel.dedup();
        }
    }
}

/// A counted materialization snapshot: output tuples with their exact
/// (positive) derivation counts, sorted by tuple — the canonical,
/// executor-independent representation the differential tests compare
/// bit-for-bit against a full recompute.
pub type CountedSnapshot = Vec<(Tuple, u64)>;

/// Flatten a [`CountedSnapshot`] into a canonical `u64` buffer:
/// `[n, then per entry: arity, values…, count]`, entries in snapshot order.
/// The format is self-delimiting and byte-stable (encoding the same
/// snapshot twice yields identical buffers), which makes it suitable both
/// for wire transfer and for checkpoint storage. Inverse:
/// [`decode_snapshot`].
pub fn encode_snapshot(snap: &CountedSnapshot) -> Vec<u64> {
    let total_values: usize = snap.iter().map(|(t, _)| t.arity()).sum();
    let mut words = Vec::with_capacity(1 + 2 * snap.len() + total_values);
    words.push(snap.len() as u64);
    for (t, c) in snap {
        words.push(t.arity() as u64);
        words.extend_from_slice(t.values());
        words.push(*c);
    }
    words
}

/// Rebuild a [`CountedSnapshot`] from its [`encode_snapshot`] buffer.
///
/// # Panics
/// Panics if the buffer is truncated or has trailing words.
pub fn decode_snapshot(words: &[u64]) -> CountedSnapshot {
    let mut pos = 0usize;
    let mut next = |n: usize| {
        assert!(pos + n <= words.len(), "snapshot buffer truncated");
        let s = &words[pos..pos + n];
        pos += n;
        s
    };
    let n = next(1)[0] as usize;
    let mut snap = CountedSnapshot::with_capacity(n);
    for _ in 0..n {
        let arity = next(1)[0] as usize;
        let values = next(arity);
        let count = next(1)[0];
        snap.push((Tuple::new(values), count));
    }
    assert_eq!(pos, words.len(), "snapshot buffer has trailing words");
    snap
}

/// Encode a signed weight into a `u64` column (two's-complement bit cast) so
/// it can ride through the join algorithms as a trailing annotation column.
#[inline]
pub fn encode_weight(w: i64) -> u64 {
    w as u64
}

/// Inverse of [`encode_weight`].
#[inline]
pub fn decode_weight(v: u64) -> i64 {
    v as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{database_from_rows, QueryBuilder};

    fn q2() -> crate::query::Query {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["A", "B"]);
        b.relation("R2", &["B", "C"]);
        b.build()
    }

    #[test]
    fn batch_bookkeeping() {
        let mut batch = UpdateBatch::empty(2);
        assert!(batch.is_empty());
        batch.insert(0, Tuple::from([1, 2]));
        batch.delete(1, Tuple::from([2, 3]));
        batch.delete(1, Tuple::from([2, 4]));
        assert_eq!(batch.size(), 3);
        assert_eq!(batch.deltas[1].len(), 2);
        let signed: Vec<i64> = batch.deltas[1].signed().map(|(_, w)| w).collect();
        assert_eq!(signed, vec![-1, -1]);
    }

    #[test]
    fn apply_to_removes_one_occurrence_and_normalizes() {
        let q = q2();
        let mut db = database_from_rows(&q, &[vec![vec![1, 10], vec![2, 10]], vec![vec![10, 7]]]);
        let mut batch = UpdateBatch::empty(2);
        batch.delete(0, Tuple::from([1, 10]));
        batch.insert(0, Tuple::from([0, 10]));
        batch.apply_to(&mut db);
        assert_eq!(
            db.relations[0].tuples,
            vec![Tuple::from([0, 10]), Tuple::from([2, 10])]
        );
    }

    #[test]
    fn weight_encoding_round_trips() {
        for w in [-3i64, -1, 0, 1, 42, i64::MIN, i64::MAX] {
            assert_eq!(decode_weight(encode_weight(w)), w);
        }
    }
}
