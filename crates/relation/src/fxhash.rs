//! Deterministic fast hashing for hot build-side indexes.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 behind a
//! randomly-seeded `RandomState`: HashDoS-safe, but ~10× slower than needed
//! for trusted `u64` keys, and differently seeded on every map — so two runs
//! of the simulator walk their hash tables in different orders. The
//! simulator is single-process and its keys are its own tuples; what matters
//! is speed and run-to-run determinism.
//!
//! [`FxHasher`] is the Firefox/rustc "Fx" multiply-rotate hash over 64-bit
//! words: one rotate, one xor, one multiply per word. [`FxHashMap`] /
//! [`FxHashSet`] are the drop-in aliases every hot index in the workspace
//! uses (this module lives in the dependency-free base crate so `aj_mpc` and
//! `aj_relation` itself can use it; `aj_primitives` re-exports it under its
//! historical paths); combined with `Tuple`'s `Borrow<[Value]>` impl, probes
//! take a bare value slice and allocate nothing.

// This module defines the deterministic aliases — the std types are
// re-exported here with a fixed, non-random hasher. aj:allow(det-map)
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiply constant (π-derived, as in rustc-hash).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx word hasher: `h = (rotl5(h) ^ word) · K` per 64-bit word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8-byte words, then the tail as one padded word. Not
        // byte-stream-stable across split writes — irrelevant for hashing,
        // which always writes whole values.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(tail) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low bits (the table index) depend on every
        // input word — the bare Fx state is weak in its low bits.
        let h = self.hash;
        let h = (h ^ (h >> 32)).wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^ (h >> 32)
    }
}

/// Deterministic builder: every map starts from the same (zero) state — no
/// `RandomState`, so iteration order is a pure function of the insertion
/// sequence and capacity.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with deterministic Fx hashing — the build-side index type of
/// the hot join loops.
// aj:allow(det-map): alias definition with the deterministic FxBuildHasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with deterministic Fx hashing.
// aj:allow(det-map): alias definition with the deterministic FxBuildHasher.
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

/// An empty [`FxHashMap`] with room for `n` entries (`with_capacity` needs
/// the hasher spelled out for non-`RandomState` maps; this reads better).
pub fn fx_map_with_capacity<K, V>(n: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(n, FxBuildHasher::default())
}

/// An empty [`FxHashSet`] with room for `n` entries.
pub fn fx_set_with_capacity<K>(n: usize) -> FxHashSet<K> {
    FxHashSet::with_capacity_and_hasher(n, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&vec![1u64, 2, 3]), hash_of(&vec![1u64, 2, 3]));
    }

    #[test]
    fn distinguishes_values_and_lengths() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&vec![1u64, 2]), hash_of(&vec![1u64, 2, 0]));
        assert_ne!(hash_of(&vec![1u64, 2]), hash_of(&vec![2u64, 1]));
    }

    #[test]
    fn tuple_and_slice_agree() {
        // The Borrow<[Value]> lookup contract: Tuple and its value slice
        // must hash identically under the same builder.
        let t = crate::Tuple::from([7, 8, 9]);
        let s: &[u64] = &[7, 8, 9];
        assert_eq!(hash_of(&t), FxBuildHasher::default().hash_one(s));
    }

    #[test]
    fn map_probes_by_slice() {
        let mut m: FxHashMap<crate::Tuple, u32> = fx_map_with_capacity(4);
        m.insert(crate::Tuple::from([1, 2]), 5);
        assert_eq!(m.get([1u64, 2].as_slice()), Some(&5));
    }

    #[test]
    fn low_bits_disperse() {
        // Consecutive keys must not collide in the low bits the table uses.
        let mut buckets = vec![0usize; 64];
        for i in 0..6400u64 {
            buckets[(hash_of(&i) & 63) as usize] += 1;
        }
        for &b in &buckets {
            assert!(
                (40..=200).contains(&b),
                "skewed bucket histogram: {buckets:?}"
            );
        }
    }

    #[test]
    fn byte_writes_cover_tails() {
        let mut h = FxHasher::default();
        h.write(b"hello world");
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write(b"hello worle");
        assert_ne!(a, h.finish());
    }
}
