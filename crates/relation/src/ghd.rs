//! Width-1 generalized hypertree decompositions (GHDs) and free-connex
//! subsets (Section 6, following Bagan–Durand–Grandjean \[6\]).
//!
//! A width-1 GHD of `Q = (V, E)` is a tree of nodes `u ⊆ V` with
//! (1) *coherence* — nodes containing any attribute form a subtree,
//! (2) *edge coverage* — every `e ∈ E` is inside some node, and
//! (3) *width 1* — every node is inside some `e ∈ E`.
//! `Q_y` is **free-connex** if some width-1 GHD has a connex subset `T'`
//! (connected, containing the root) whose nodes union to exactly `y`.
//!
//! The execution pipeline ([`crate::semiring`] + `aj-core`'s aggregate
//! module) uses the equivalent characterization "`E ∪ {y}` is acyclic";
//! this module materializes the decomposition itself so it can be
//! inspected, tested, and printed.

use crate::query::{Attr, Query};
use crate::sets::AttrSet;
use crate::Edge;

/// A generalized hypertree decomposition of an arbitrary *connected* join
/// query, built by [`Ghd::build`].
///
/// Unlike [`FreeConnexGhd`] (width 1, acyclic queries only), a `Ghd`
/// *partitions* the query's edges into bags: bag `b` is assigned the edge
/// list `λ(b) = edges_of[b]` and covers the attribute set `χ(b) = bags[b]`
/// (the union of its edges' attributes). The bags, viewed as a hypergraph
/// over the same attribute space, form an α-acyclic query — so once every
/// bag is materialized (worst-case-optimally, by `aj-core`'s WCOJ), the
/// remaining join is served by the existing acyclic machinery.
///
/// Because `λ` is a partition (every edge assigned to exactly one bag, no
/// projections), each bag tuple has derivation count exactly 1 under set
/// semantics: bag materializations are plain sets, which is what makes the
/// counted delta-maintenance argument go through unchanged.
#[derive(Debug, Clone)]
pub struct Ghd {
    /// `χ(b)`: the attribute set covered by each bag.
    pub bags: Vec<AttrSet>,
    /// `λ(b)`: the query edges assigned to each bag (a partition of
    /// `0..q.n_edges()`, each list in increasing edge order).
    pub edges_of: Vec<Vec<usize>>,
    /// Parent pointers of the bag join tree (`None` for the root only).
    pub parent: Vec<Option<usize>>,
    /// Bottom-up bag order (leaves first, root last), as produced by GYO
    /// ear removal on the bag hypergraph.
    pub order: Vec<usize>,
}

impl Ghd {
    /// Decompose a connected query into an acyclic tree of bags.
    ///
    /// Returns `None` for disconnected queries (callers split on
    /// [`Query::connected_components`] first). Always succeeds on connected
    /// queries: the single-bag decomposition is a universal fallback.
    ///
    /// Construction is a deterministic greedy merge: start with one bag per
    /// edge; while the bag hypergraph is cyclic, merge the pair of bags
    /// sharing the most attributes, breaking ties towards the smallest
    /// merged attribute set and then the lowest bag indices. Sharing-first
    /// keeps bags tight (a 4-cycle splits into two 3-attribute bags rather
    /// than one 4-attribute bag); on an already-acyclic query the loop
    /// never runs and the decomposition is exactly one bag per edge with
    /// the query's own join tree.
    pub fn build(q: &Query) -> Option<Ghd> {
        if q.connected_components().len() != 1 {
            return None;
        }
        let mut groups: Vec<Vec<usize>> = (0..q.n_edges()).map(|e| vec![e]).collect();
        let mut chi: Vec<AttrSet> = q.edges().iter().map(Edge::attr_set).collect();
        let tree = loop {
            if let Some(t) = bag_join_tree(q, &chi) {
                break t;
            }
            // Pick the pair to merge: max shared attrs, then smallest
            // union, then lowest (i, j).
            let mut best: Option<(usize, usize)> = None;
            let mut best_key = (0usize, usize::MAX);
            for i in 0..chi.len() {
                for j in (i + 1)..chi.len() {
                    let shared = chi[i].intersect(chi[j]).len();
                    if shared == 0 {
                        continue;
                    }
                    let union = chi[i].union(chi[j]).len();
                    if shared > best_key.0 || (shared == best_key.0 && union < best_key.1) {
                        best_key = (shared, union);
                        best = Some((i, j));
                    }
                }
            }
            let (i, j) = best.expect("connected cyclic hypergraph has a sharing pair");
            let absorbed = groups.remove(j);
            groups[i].extend(absorbed);
            groups[i].sort_unstable();
            let cj = chi.remove(j);
            chi[i] = chi[i].union(cj);
        };
        let ghd = Ghd {
            bags: chi,
            edges_of: groups,
            parent: tree.parent,
            order: tree.order,
        };
        debug_assert!(ghd.validate(q), "greedy GHD violates an invariant");
        Some(ghd)
    }

    /// Number of bags.
    pub fn n_bags(&self) -> usize {
        self.bags.len()
    }

    /// Whether the decomposition is the trivial single bag (the whole
    /// query); evaluating it through the bag tree degenerates to one
    /// whole-query WCOJ, so planners skip the GHD route in that case.
    pub fn is_trivial(&self) -> bool {
        self.bags.len() == 1
    }

    /// Width of the decomposition: the largest number of edges assigned to
    /// one bag (an integral bound on each bag's edge cover; 1 on acyclic
    /// queries).
    pub fn width(&self) -> usize {
        self.edges_of.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The bag-level query: one synthetic edge `B{b}` per bag over the same
    /// attribute space, attributes in increasing order. α-acyclic by
    /// construction — callers run the acyclic pipeline on it.
    pub fn bag_query(&self, q: &Query) -> Query {
        let edges = self
            .bags
            .iter()
            .enumerate()
            .map(|(b, &chi)| Edge {
                name: format!("B{b}"),
                attrs: chi.to_vec(),
            })
            .collect();
        Query::from_parts(q.attr_names().to_vec(), edges)
    }

    /// Check the GHD invariants against `q` (used by tests and debug
    /// assertions): `λ` partitions the edge set, `χ(b)` is the union of
    /// `λ(b)`'s attributes (hence every edge is covered by its own bag),
    /// the bag tree is a tree satisfying coherence (running intersection),
    /// and the bag hypergraph is α-acyclic.
    pub fn validate(&self, q: &Query) -> bool {
        let n = self.bags.len();
        if self.edges_of.len() != n || self.parent.len() != n || self.order.len() != n {
            return false;
        }
        // λ partitions the edges.
        let mut seen = vec![false; q.n_edges()];
        for es in &self.edges_of {
            for &e in es {
                if e >= q.n_edges() || seen[e] {
                    return false;
                }
                seen[e] = true;
            }
        }
        if !seen.iter().all(|&s| s) {
            return false;
        }
        // χ(b) = union of assigned edges' attributes (covers each of them).
        for (b, es) in self.edges_of.iter().enumerate() {
            let union = es
                .iter()
                .fold(AttrSet::EMPTY, |acc, &e| acc.union(q.edge(e).attr_set()));
            if union != self.bags[b] {
                return false;
            }
        }
        // Tree shape: exactly one root.
        if self.parent.iter().filter(|p| p.is_none()).count() != 1 {
            return false;
        }
        // Coherence: bags containing any attribute form a subtree.
        for a in 0..q.n_attrs() {
            let members: Vec<usize> = (0..n).filter(|&b| self.bags[b].contains(a)).collect();
            if members.is_empty() {
                continue;
            }
            let inner = members
                .iter()
                .filter(|&&b| {
                    self.parent[b]
                        .map(|p| self.bags[p].contains(a))
                        .unwrap_or(false)
                })
                .count();
            if inner != members.len() - 1 {
                return false;
            }
        }
        // The bag hypergraph is acyclic (the tree above witnesses it, but
        // re-derive independently through GYO).
        self.bag_query(q).is_acyclic()
    }

    /// Pretty-print the bag tree with attribute and relation names.
    pub fn render(&self, q: &Query) -> String {
        fn rec(g: &Ghd, q: &Query, b: usize, depth: usize, out: &mut String) {
            let attrs: Vec<&str> = g.bags[b].iter().map(|a| q.attr_name(a)).collect();
            let rels: Vec<&str> = g.edges_of[b]
                .iter()
                .map(|&e| q.edge(e).name.as_str())
                .collect();
            out.push_str(&format!(
                "{}{{{}}} ⟵ {}\n",
                "  ".repeat(depth),
                attrs.join(","),
                rels.join(" ⋈ ")
            ));
            for c in 0..g.n_bags() {
                if g.parent[c] == Some(b) {
                    rec(g, q, c, depth + 1, out);
                }
            }
        }
        let root = (0..self.n_bags())
            .find(|&b| self.parent[b].is_none())
            .expect("tree has a root");
        let mut out = String::new();
        rec(self, q, root, 0, &mut out);
        out
    }
}

/// GYO ear removal over the bag hypergraph (attribute sets only).
fn bag_join_tree(q: &Query, chi: &[AttrSet]) -> Option<crate::JoinTree> {
    let edges = chi
        .iter()
        .enumerate()
        .map(|(b, &s)| Edge {
            name: format!("B{b}"),
            attrs: s.to_vec(),
        })
        .collect();
    Query::from_parts(q.attr_names().to_vec(), edges).join_tree()
}

/// A width-1 GHD with an explicit free-connex subset for output set `y`.
///
/// Width-1 witnesses are edges of the *extended* query `E ∪ {ŷ}` — the
/// hypergraph whose acyclicity defines free-connexity. `witness[u] ==
/// usize::MAX` marks the output atom `ŷ` as the witness (only ever used for
/// an all-output node).
#[derive(Debug, Clone)]
pub struct FreeConnexGhd {
    /// The output attribute set `y`.
    pub y: AttrSet,
    /// Node attribute sets; node 0 is the root.
    pub nodes: Vec<AttrSet>,
    /// Parent pointers (`None` for the root only).
    pub parent: Vec<Option<usize>>,
    /// For each node, a witness edge containing it (width-1); `usize::MAX`
    /// denotes the output atom `ŷ`.
    pub witness: Vec<usize>,
    /// The connex subset `T'`: node indices whose union is exactly `y`.
    pub connex: Vec<usize>,
}

impl FreeConnexGhd {
    /// Construct a width-1 GHD of `q` whose connex subset covers exactly
    /// `y`, or `None` if `Q_y` is not free-connex.
    ///
    /// Construction: build the join tree of `E ∪ {ŷ}` (which exists iff the
    /// query is free-connex), root it at `ŷ`, and split every node `u` into
    /// its output part `u ∩ y` (stacked towards the root) and the full node
    /// below it. The output parts reachable from the root through output
    /// parts form the connex subset.
    pub fn build(q: &Query, y: &[Attr]) -> Option<FreeConnexGhd> {
        if !q.is_acyclic() {
            return None;
        }
        let yset = AttrSet::from_iter(y.iter().copied());
        // Join tree of E ∪ {ŷ}.
        let mut edges = q.edges().to_vec();
        edges.push(Edge {
            name: "ŷ".into(),
            attrs: y.to_vec(),
        });
        let qplus = Query::from_parts(q.attr_names().to_vec(), edges);
        let tree = qplus.join_tree()?;
        let y_node = q.n_edges();
        // Re-root at ŷ via BFS.
        let n = qplus.n_edges();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (e, p) in tree.parent.iter().enumerate() {
            if let Some(p) = p {
                adj[e].push(*p);
                adj[*p].push(e);
            }
        }
        let mut order = vec![y_node];
        let mut parent_of: Vec<Option<usize>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[y_node] = true;
        let mut i = 0;
        while i < order.len() {
            let u = order[i];
            i += 1;
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent_of[v] = Some(u);
                    order.push(v);
                }
            }
        }
        // Assemble the GHD: root = ŷ's attrs (= y); under each original
        // edge e, insert its output part (e ∩ y) between e and its parent —
        // this keeps coherence and makes the top region all-output.
        let mut nodes: Vec<AttrSet> = vec![yset];
        let mut parent: Vec<Option<usize>> = vec![None];
        let mut witness: Vec<usize> = vec![usize::MAX]; // fixed below
        let mut ghd_of: Vec<usize> = vec![usize::MAX; n];
        ghd_of[y_node] = 0;
        for &u in order.iter().skip(1) {
            let e_attrs = qplus.edge(u).attr_set();
            let out_part = e_attrs.intersect(yset);
            let pr = ghd_of[parent_of[u].expect("non-root")];
            // Output-part node (skip when empty or equal to the full node).
            let attach = if !out_part.is_empty() && out_part != e_attrs {
                nodes.push(out_part);
                parent.push(Some(pr));
                witness.push(u);
                nodes.len() - 1
            } else {
                pr
            };
            nodes.push(e_attrs);
            parent.push(Some(attach));
            witness.push(u);
            ghd_of[u] = nodes.len() - 1;
        }
        // Primary strategy: if some edge of Q contains y, the synthetic
        // root is witnessed inside Q and the enriched tree (with output
        // parts inserted towards the root) usually yields a fine-grained
        // connex subset. Validate; fall back to the universal form below.
        if let Some(w) = (0..q.n_edges()).find(|&e| yset.is_subset(q.edge(e).attr_set())) {
            witness[0] = w;
            let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
            for (i, pr) in parent.iter().enumerate() {
                if let Some(p) = pr {
                    children[*p].push(i);
                }
            }
            let mut connex = Vec::new();
            let mut stack = vec![0usize];
            while let Some(u) = stack.pop() {
                connex.push(u);
                for &c in &children[u] {
                    if nodes[c].is_subset(yset) {
                        stack.push(c);
                    }
                }
            }
            let covered = connex
                .iter()
                .fold(AttrSet::EMPTY, |acc, &u| acc.union(nodes[u]));
            let ghd = FreeConnexGhd {
                y: yset,
                nodes,
                parent,
                witness,
                connex,
            };
            if covered == yset && ghd.validate(q) {
                return Some(ghd);
            }
        }
        // Universal fallback: the plain join tree of E ∪ {ŷ} rooted at the
        // output atom. The root node is exactly y (witnessed by ŷ itself)
        // and forms the connex subset on its own.
        let mut nodes: Vec<AttrSet> = vec![yset];
        let mut parent: Vec<Option<usize>> = vec![None];
        let mut witness: Vec<usize> = vec![usize::MAX];
        let mut ghd_of: Vec<usize> = vec![usize::MAX; n];
        ghd_of[y_node] = 0;
        for &u in order.iter().skip(1) {
            nodes.push(qplus.edge(u).attr_set());
            parent.push(Some(ghd_of[parent_of[u].expect("non-root")]));
            witness.push(u);
            ghd_of[u] = nodes.len() - 1;
        }
        let ghd = FreeConnexGhd {
            y: yset,
            nodes,
            parent,
            witness,
            connex: vec![0],
        };
        debug_assert!(ghd.validate(q), "fallback GHD violates an invariant");
        Some(ghd)
    }

    /// Check the three width-1 GHD properties plus connexity (used by tests
    /// and debug assertions).
    pub fn validate(&self, q: &Query) -> bool {
        let n = self.nodes.len();
        // Tree shape: exactly one root, parents in range.
        if self.parent.iter().filter(|p| p.is_none()).count() != 1 {
            return false;
        }
        // (1) Coherence per attribute.
        for a in 0..q.n_attrs() {
            let members: Vec<usize> = (0..n).filter(|&u| self.nodes[u].contains(a)).collect();
            if members.is_empty() {
                continue;
            }
            // Count members whose parent is also a member; a connected
            // subtree has exactly |members| - 1 such edges.
            let inner = members
                .iter()
                .filter(|&&u| {
                    self.parent[u]
                        .map(|p| self.nodes[p].contains(a))
                        .unwrap_or(false)
                })
                .count();
            if inner != members.len() - 1 {
                return false;
            }
        }
        // (2) Edge coverage.
        for e in q.edges() {
            if !(0..n).any(|u| e.attr_set().is_subset(self.nodes[u])) {
                return false;
            }
        }
        // (3) Width 1 against the extended query E ∪ {ŷ}.
        for u in 0..n {
            let w = self.witness[u];
            let inside = if w < q.n_edges() {
                self.nodes[u].is_subset(q.edge(w).attr_set())
            } else {
                // Witnessed by the output atom ŷ.
                self.nodes[u].is_subset(self.y)
            };
            if !inside {
                return false;
            }
        }
        // Connex subset is non-empty, contains the root, is upward-closed,
        // and unions to exactly y.
        let root = (0..n).find(|&u| self.parent[u].is_none()).unwrap_or(0);
        if !self.connex.contains(&root) {
            return false;
        }
        let covered = self
            .connex
            .iter()
            .fold(AttrSet::EMPTY, |acc, &u| acc.union(self.nodes[u]));
        if covered != self.y {
            return false;
        }
        for &u in &self.connex {
            if let Some(p) = self.parent[u] {
                if !self.connex.contains(&p) {
                    return false;
                }
            }
        }
        true
    }

    /// Pretty-print with attribute names.
    pub fn render(&self, q: &Query) -> String {
        fn rec(g: &FreeConnexGhd, q: &Query, u: usize, depth: usize, out: &mut String) {
            let names: Vec<&str> = g.nodes[u].iter().map(|a| q.attr_name(a)).collect();
            let star = if g.connex.contains(&u) { "*" } else { "" };
            out.push_str(&format!(
                "{}{{{}}}{}\n",
                "  ".repeat(depth),
                names.join(","),
                star
            ));
            for c in 0..g.nodes.len() {
                if g.parent[c] == Some(u) {
                    rec(g, q, c, depth + 1, out);
                }
            }
        }
        let root = (0..self.nodes.len())
            .find(|&u| self.parent[u].is_none())
            .expect("tree has a root");
        let mut out = String::new();
        rec(self, q, root, 0, &mut out);
        out.push_str("(* = free-connex subset)\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;

    fn line3() -> Query {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["A", "B"]);
        b.relation("R2", &["B", "C"]);
        b.relation("R3", &["C", "D"]);
        b.build()
    }

    #[test]
    fn ghd_for_prefix_projection() {
        let q = line3();
        let y = vec![0usize, 1]; // {A, B}: free-connex
        let g = FreeConnexGhd::build(&q, &y).expect("free-connex");
        assert!(g.validate(&q));
        let covered = g
            .connex
            .iter()
            .fold(AttrSet::EMPTY, |acc, &u| acc.union(g.nodes[u]));
        assert_eq!(covered, AttrSet::from_iter(y));
    }

    #[test]
    fn ghd_rejects_non_free_connex() {
        let q = line3();
        // π_{A,D} of the line-3 join: the classic non-free-connex example.
        assert!(FreeConnexGhd::build(&q, &[0, 3]).is_none());
    }

    #[test]
    fn ghd_full_output() {
        let q = line3();
        let y: Vec<usize> = (0..4).collect();
        let g = FreeConnexGhd::build(&q, &y).expect("full output is free-connex");
        assert!(g.validate(&q));
        // Everything is output: the connex subset covers all attrs.
        let covered = g
            .connex
            .iter()
            .fold(AttrSet::EMPTY, |acc, &u| acc.union(g.nodes[u]));
        assert_eq!(covered, AttrSet::from_iter(y));
    }

    #[test]
    fn ghd_star_center_projection() {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["X", "A"]);
        b.relation("R2", &["X", "B"]);
        let q = b.build();
        let x = q.attr_by_name("X").unwrap();
        let g = FreeConnexGhd::build(&q, &[x]).expect("center projection is free-connex");
        assert!(g.validate(&q));
    }

    #[test]
    fn render_marks_connex() {
        let q = line3();
        let g = FreeConnexGhd::build(&q, &[0, 1]).unwrap();
        let s = g.render(&q);
        assert!(s.contains('*'));
        assert!(s.contains("free-connex subset"));
    }

    fn four_cycle() -> Query {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["A", "B"]);
        b.relation("R2", &["B", "C"]);
        b.relation("R3", &["C", "D"]);
        b.relation("R4", &["D", "A"]);
        b.build()
    }

    #[test]
    fn general_ghd_four_cycle_splits_into_two_bags() {
        let q = four_cycle();
        let g = Ghd::build(&q).expect("connected");
        assert!(g.validate(&q));
        assert_eq!(g.n_bags(), 2);
        let mut bags: Vec<Vec<usize>> = g.bags.iter().map(|b| b.to_vec()).collect();
        bags.sort();
        // {A,B,C} (from R1 ⋈ R2) and {A,C,D} (from R3 ⋈ R4).
        assert_eq!(bags, vec![vec![0, 1, 2], vec![0, 2, 3]]);
        assert!(g.bag_query(&q).is_acyclic());
        assert_eq!(g.width(), 2);
    }

    #[test]
    fn general_ghd_clique_k4() {
        let mut b = QueryBuilder::new();
        for (i, (x, y)) in [
            ("A", "B"),
            ("A", "C"),
            ("A", "D"),
            ("B", "C"),
            ("B", "D"),
            ("C", "D"),
        ]
        .iter()
        .enumerate()
        {
            b.relation(&format!("R{i}"), &[x, y]);
        }
        let q = b.build();
        let g = Ghd::build(&q).expect("connected");
        assert!(g.validate(&q));
        assert!(g.bag_query(&q).is_acyclic());
        // Every edge lands in exactly one bag.
        let assigned: usize = g.edges_of.iter().map(Vec::len).sum();
        assert_eq!(assigned, q.n_edges());
    }

    #[test]
    fn general_ghd_triangle_has_a_covering_bag() {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["B", "C"]);
        b.relation("R2", &["A", "C"]);
        b.relation("R3", &["A", "B"]);
        let q = b.build();
        let g = Ghd::build(&q).expect("connected");
        assert!(g.validate(&q));
        // Some bag covers all three attributes (the cyclic core is not
        // splittable), and the multi-edge bag has width ≥ 2.
        assert!(g.bags.iter().any(|b| b.len() == 3));
        assert!(g.width() >= 2);
    }

    #[test]
    fn general_ghd_acyclic_is_one_bag_per_edge() {
        let q = line3();
        let g = Ghd::build(&q).expect("connected");
        assert!(g.validate(&q));
        assert_eq!(g.n_bags(), q.n_edges());
        assert_eq!(g.width(), 1);
        for (b, es) in g.edges_of.iter().enumerate() {
            assert_eq!(es.len(), 1);
            assert_eq!(q.edge(es[0]).attr_set(), g.bags[b]);
        }
    }

    #[test]
    fn general_ghd_rejects_disconnected() {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["A", "B"]);
        b.relation("R2", &["X", "Y"]);
        assert!(Ghd::build(&b.build()).is_none());
    }

    #[test]
    fn general_ghd_render_shows_bags() {
        let q = four_cycle();
        let g = Ghd::build(&q).unwrap();
        let s = g.render(&q);
        assert!(s.contains('⟵'));
        assert!(s.contains("R1"));
    }

    #[test]
    fn ghd_agrees_with_acyclicity_check_on_corpus() {
        // The constructive GHD succeeds exactly when E ∪ {y} is acyclic.
        let q = line3();
        for ymask in 0u32..16 {
            let y: Vec<usize> = (0..4).filter(|&a| (ymask >> a) & 1 == 1).collect();
            let via_ghd = FreeConnexGhd::build(&q, &y).is_some();
            let mut edges = q.edges().to_vec();
            edges.push(Edge {
                name: "ŷ".into(),
                attrs: y.clone(),
            });
            let via_acyclic = Query::from_parts(q.attr_names().to_vec(), edges).is_acyclic();
            assert_eq!(via_ghd, via_acyclic, "y = {y:?}");
        }
    }
}
