//! Width-1 generalized hypertree decompositions (GHDs) and free-connex
//! subsets (Section 6, following Bagan–Durand–Grandjean \[6\]).
//!
//! A width-1 GHD of `Q = (V, E)` is a tree of nodes `u ⊆ V` with
//! (1) *coherence* — nodes containing any attribute form a subtree,
//! (2) *edge coverage* — every `e ∈ E` is inside some node, and
//! (3) *width 1* — every node is inside some `e ∈ E`.
//! `Q_y` is **free-connex** if some width-1 GHD has a connex subset `T'`
//! (connected, containing the root) whose nodes union to exactly `y`.
//!
//! The execution pipeline ([`crate::semiring`] + `aj-core`'s aggregate
//! module) uses the equivalent characterization "`E ∪ {y}` is acyclic";
//! this module materializes the decomposition itself so it can be
//! inspected, tested, and printed.

use crate::query::{Attr, Query};
use crate::sets::AttrSet;
use crate::Edge;

/// A width-1 GHD with an explicit free-connex subset for output set `y`.
///
/// Width-1 witnesses are edges of the *extended* query `E ∪ {ŷ}` — the
/// hypergraph whose acyclicity defines free-connexity. `witness[u] ==
/// usize::MAX` marks the output atom `ŷ` as the witness (only ever used for
/// an all-output node).
#[derive(Debug, Clone)]
pub struct FreeConnexGhd {
    /// The output attribute set `y`.
    pub y: AttrSet,
    /// Node attribute sets; node 0 is the root.
    pub nodes: Vec<AttrSet>,
    /// Parent pointers (`None` for the root only).
    pub parent: Vec<Option<usize>>,
    /// For each node, a witness edge containing it (width-1); `usize::MAX`
    /// denotes the output atom `ŷ`.
    pub witness: Vec<usize>,
    /// The connex subset `T'`: node indices whose union is exactly `y`.
    pub connex: Vec<usize>,
}

impl FreeConnexGhd {
    /// Construct a width-1 GHD of `q` whose connex subset covers exactly
    /// `y`, or `None` if `Q_y` is not free-connex.
    ///
    /// Construction: build the join tree of `E ∪ {ŷ}` (which exists iff the
    /// query is free-connex), root it at `ŷ`, and split every node `u` into
    /// its output part `u ∩ y` (stacked towards the root) and the full node
    /// below it. The output parts reachable from the root through output
    /// parts form the connex subset.
    pub fn build(q: &Query, y: &[Attr]) -> Option<FreeConnexGhd> {
        if !q.is_acyclic() {
            return None;
        }
        let yset = AttrSet::from_iter(y.iter().copied());
        // Join tree of E ∪ {ŷ}.
        let mut edges = q.edges().to_vec();
        edges.push(Edge {
            name: "ŷ".into(),
            attrs: y.to_vec(),
        });
        let qplus = Query::from_parts(q.attr_names().to_vec(), edges);
        let tree = qplus.join_tree()?;
        let y_node = q.n_edges();
        // Re-root at ŷ via BFS.
        let n = qplus.n_edges();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (e, p) in tree.parent.iter().enumerate() {
            if let Some(p) = p {
                adj[e].push(*p);
                adj[*p].push(e);
            }
        }
        let mut order = vec![y_node];
        let mut parent_of: Vec<Option<usize>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[y_node] = true;
        let mut i = 0;
        while i < order.len() {
            let u = order[i];
            i += 1;
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent_of[v] = Some(u);
                    order.push(v);
                }
            }
        }
        // Assemble the GHD: root = ŷ's attrs (= y); under each original
        // edge e, insert its output part (e ∩ y) between e and its parent —
        // this keeps coherence and makes the top region all-output.
        let mut nodes: Vec<AttrSet> = vec![yset];
        let mut parent: Vec<Option<usize>> = vec![None];
        let mut witness: Vec<usize> = vec![usize::MAX]; // fixed below
        let mut ghd_of: Vec<usize> = vec![usize::MAX; n];
        ghd_of[y_node] = 0;
        for &u in order.iter().skip(1) {
            let e_attrs = qplus.edge(u).attr_set();
            let out_part = e_attrs.intersect(yset);
            let pr = ghd_of[parent_of[u].expect("non-root")];
            // Output-part node (skip when empty or equal to the full node).
            let attach = if !out_part.is_empty() && out_part != e_attrs {
                nodes.push(out_part);
                parent.push(Some(pr));
                witness.push(u);
                nodes.len() - 1
            } else {
                pr
            };
            nodes.push(e_attrs);
            parent.push(Some(attach));
            witness.push(u);
            ghd_of[u] = nodes.len() - 1;
        }
        // Primary strategy: if some edge of Q contains y, the synthetic
        // root is witnessed inside Q and the enriched tree (with output
        // parts inserted towards the root) usually yields a fine-grained
        // connex subset. Validate; fall back to the universal form below.
        if let Some(w) = (0..q.n_edges()).find(|&e| yset.is_subset(q.edge(e).attr_set())) {
            witness[0] = w;
            let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
            for (i, pr) in parent.iter().enumerate() {
                if let Some(p) = pr {
                    children[*p].push(i);
                }
            }
            let mut connex = Vec::new();
            let mut stack = vec![0usize];
            while let Some(u) = stack.pop() {
                connex.push(u);
                for &c in &children[u] {
                    if nodes[c].is_subset(yset) {
                        stack.push(c);
                    }
                }
            }
            let covered = connex
                .iter()
                .fold(AttrSet::EMPTY, |acc, &u| acc.union(nodes[u]));
            let ghd = FreeConnexGhd {
                y: yset,
                nodes,
                parent,
                witness,
                connex,
            };
            if covered == yset && ghd.validate(q) {
                return Some(ghd);
            }
        }
        // Universal fallback: the plain join tree of E ∪ {ŷ} rooted at the
        // output atom. The root node is exactly y (witnessed by ŷ itself)
        // and forms the connex subset on its own.
        let mut nodes: Vec<AttrSet> = vec![yset];
        let mut parent: Vec<Option<usize>> = vec![None];
        let mut witness: Vec<usize> = vec![usize::MAX];
        let mut ghd_of: Vec<usize> = vec![usize::MAX; n];
        ghd_of[y_node] = 0;
        for &u in order.iter().skip(1) {
            nodes.push(qplus.edge(u).attr_set());
            parent.push(Some(ghd_of[parent_of[u].expect("non-root")]));
            witness.push(u);
            ghd_of[u] = nodes.len() - 1;
        }
        let ghd = FreeConnexGhd {
            y: yset,
            nodes,
            parent,
            witness,
            connex: vec![0],
        };
        debug_assert!(ghd.validate(q), "fallback GHD violates an invariant");
        Some(ghd)
    }

    /// Check the three width-1 GHD properties plus connexity (used by tests
    /// and debug assertions).
    pub fn validate(&self, q: &Query) -> bool {
        let n = self.nodes.len();
        // Tree shape: exactly one root, parents in range.
        if self.parent.iter().filter(|p| p.is_none()).count() != 1 {
            return false;
        }
        // (1) Coherence per attribute.
        for a in 0..q.n_attrs() {
            let members: Vec<usize> = (0..n).filter(|&u| self.nodes[u].contains(a)).collect();
            if members.is_empty() {
                continue;
            }
            // Count members whose parent is also a member; a connected
            // subtree has exactly |members| - 1 such edges.
            let inner = members
                .iter()
                .filter(|&&u| {
                    self.parent[u]
                        .map(|p| self.nodes[p].contains(a))
                        .unwrap_or(false)
                })
                .count();
            if inner != members.len() - 1 {
                return false;
            }
        }
        // (2) Edge coverage.
        for e in q.edges() {
            if !(0..n).any(|u| e.attr_set().is_subset(self.nodes[u])) {
                return false;
            }
        }
        // (3) Width 1 against the extended query E ∪ {ŷ}.
        for u in 0..n {
            let w = self.witness[u];
            let inside = if w < q.n_edges() {
                self.nodes[u].is_subset(q.edge(w).attr_set())
            } else {
                // Witnessed by the output atom ŷ.
                self.nodes[u].is_subset(self.y)
            };
            if !inside {
                return false;
            }
        }
        // Connex subset is non-empty, contains the root, is upward-closed,
        // and unions to exactly y.
        let root = (0..n).find(|&u| self.parent[u].is_none()).unwrap_or(0);
        if !self.connex.contains(&root) {
            return false;
        }
        let covered = self
            .connex
            .iter()
            .fold(AttrSet::EMPTY, |acc, &u| acc.union(self.nodes[u]));
        if covered != self.y {
            return false;
        }
        for &u in &self.connex {
            if let Some(p) = self.parent[u] {
                if !self.connex.contains(&p) {
                    return false;
                }
            }
        }
        true
    }

    /// Pretty-print with attribute names.
    pub fn render(&self, q: &Query) -> String {
        fn rec(g: &FreeConnexGhd, q: &Query, u: usize, depth: usize, out: &mut String) {
            let names: Vec<&str> = g.nodes[u].iter().map(|a| q.attr_name(a)).collect();
            let star = if g.connex.contains(&u) { "*" } else { "" };
            out.push_str(&format!(
                "{}{{{}}}{}\n",
                "  ".repeat(depth),
                names.join(","),
                star
            ));
            for c in 0..g.nodes.len() {
                if g.parent[c] == Some(u) {
                    rec(g, q, c, depth + 1, out);
                }
            }
        }
        let root = (0..self.nodes.len())
            .find(|&u| self.parent[u].is_none())
            .expect("tree has a root");
        let mut out = String::new();
        rec(self, q, root, 0, &mut out);
        out.push_str("(* = free-connex subset)\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;

    fn line3() -> Query {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["A", "B"]);
        b.relation("R2", &["B", "C"]);
        b.relation("R3", &["C", "D"]);
        b.build()
    }

    #[test]
    fn ghd_for_prefix_projection() {
        let q = line3();
        let y = vec![0usize, 1]; // {A, B}: free-connex
        let g = FreeConnexGhd::build(&q, &y).expect("free-connex");
        assert!(g.validate(&q));
        let covered = g
            .connex
            .iter()
            .fold(AttrSet::EMPTY, |acc, &u| acc.union(g.nodes[u]));
        assert_eq!(covered, AttrSet::from_iter(y));
    }

    #[test]
    fn ghd_rejects_non_free_connex() {
        let q = line3();
        // π_{A,D} of the line-3 join: the classic non-free-connex example.
        assert!(FreeConnexGhd::build(&q, &[0, 3]).is_none());
    }

    #[test]
    fn ghd_full_output() {
        let q = line3();
        let y: Vec<usize> = (0..4).collect();
        let g = FreeConnexGhd::build(&q, &y).expect("full output is free-connex");
        assert!(g.validate(&q));
        // Everything is output: the connex subset covers all attrs.
        let covered = g
            .connex
            .iter()
            .fold(AttrSet::EMPTY, |acc, &u| acc.union(g.nodes[u]));
        assert_eq!(covered, AttrSet::from_iter(y));
    }

    #[test]
    fn ghd_star_center_projection() {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["X", "A"]);
        b.relation("R2", &["X", "B"]);
        let q = b.build();
        let x = q.attr_by_name("X").unwrap();
        let g = FreeConnexGhd::build(&q, &[x]).expect("center projection is free-connex");
        assert!(g.validate(&q));
    }

    #[test]
    fn render_marks_connex() {
        let q = line3();
        let g = FreeConnexGhd::build(&q, &[0, 1]).unwrap();
        let s = g.render(&q);
        assert!(s.contains('*'));
        assert!(s.contains("free-connex subset"));
    }

    #[test]
    fn ghd_agrees_with_acyclicity_check_on_corpus() {
        // The constructive GHD succeeds exactly when E ∪ {y} is acyclic.
        let q = line3();
        for ymask in 0u32..16 {
            let y: Vec<usize> = (0..4).filter(|&a| (ymask >> a) & 1 == 1).collect();
            let via_ghd = FreeConnexGhd::build(&q, &y).is_some();
            let mut edges = q.edges().to_vec();
            edges.push(Edge {
                name: "ŷ".into(),
                attrs: y.clone(),
            });
            let via_acyclic = Query::from_parts(q.attr_names().to_vec(), edges).is_acyclic();
            assert_eq!(via_ghd, via_acyclic, "y = {y:?}");
        }
    }
}
