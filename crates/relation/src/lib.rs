//! Relational substrate for the acyclic-join reproduction.
//!
//! This crate owns everything the join algorithms need *about* data and
//! queries, independent of the MPC model:
//!
//! * [`Tuple`], [`Relation`], [`Database`] — the data model (set semantics,
//!   `u64` values);
//! * [`TupleBlock`] — columnar row storage (flat `Vec<u64>` + arity), the
//!   unit of the zero-copy data plane ([`block`]);
//! * [`Query`] / [`QueryBuilder`] — natural-join hypergraphs `(V, E)`;
//! * [`JoinTree`] and GYO-based acyclicity testing ([`Query::join_tree`]);
//! * join classification per Section 1.4 of the paper — tall-flat ⊂
//!   hierarchical ⊂ r-hierarchical ⊂ acyclic ([`classify`]);
//! * the attribute forest of hierarchical joins ([`classify::AttributeForest`]);
//! * canonical query signatures — structural cache keys for per-shape
//!   planning artifacts ([`signature`]);
//! * heavy-hitter skew profiles and the grid math of hybrid routing
//!   ([`skew`]);
//! * deterministic Fx hashing — the workspace-wide `HashMap` replacement
//!   ([`fxhash`]);
//! * signed update batches and counted materializations — the data model of
//!   incremental view maintenance ([`delta`]);
//! * Lemma 2's minimal-path-of-length-3 witness ([`minpath`]);
//! * integral edge covers, Lemma 1 ([`cover`]);
//! * semiring annotations for join-aggregate queries, Section 6
//!   ([`semiring`]);
//! * an in-memory (RAM-model) Yannakakis engine used as the correctness
//!   oracle and for exact `OUT` / `|Q(R,S)|` computation ([`ram`]).
//!
//! ```
//! use aj_relation::{classify::classify, database_from_rows, ram, JoinClass, QueryBuilder};
//!
//! // R1(A,B) ⋈ R2(B,C): build, classify, evaluate with the RAM oracle.
//! let mut b = QueryBuilder::new();
//! b.relation("R1", &["A", "B"]);
//! b.relation("R2", &["B", "C"]);
//! let q = b.build();
//! assert!(q.is_acyclic());
//! assert_eq!(classify(&q), JoinClass::TallFlat);
//!
//! let db = database_from_rows(&q, &[vec![vec![1, 10], vec![2, 10]], vec![vec![10, 7]]]);
//! assert_eq!(ram::count(&q, &db), 2);
//! ```

#![deny(missing_docs)]

pub mod block;
pub mod classify;
pub mod cover;
pub mod delta;
pub mod fxhash;
pub mod ghd;
pub mod minpath;
pub mod query;
pub mod ram;
pub mod semiring;
pub mod sets;
pub mod signature;
pub mod skew;
pub mod tuple;

pub use block::TupleBlock;
pub use classify::JoinClass;
pub use delta::{decode_snapshot, encode_snapshot, RelationDelta, UpdateBatch};
pub use ghd::{FreeConnexGhd, Ghd};
pub use query::{database_from_rows, Attr, Database, Edge, Query, QueryBuilder, Relation};
pub use sets::{AttrSet, EdgeSet};
pub use signature::QuerySignature;
pub use skew::{JoinSkew, SkewProfile};
pub use tuple::{Tuple, Value};

/// A join tree of an acyclic query: node `i` is edge `i` of the query;
/// `parent[i]` is its parent (`None` exactly for the root). `order` lists the
/// edges in ear-removal order (leaves first, root last), which is a valid
/// bottom-up evaluation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTree {
    /// Parent edge of each edge (`None` exactly for the root).
    pub parent: Vec<Option<usize>>,
    /// Ear-removal order (leaves first, root last).
    pub order: Vec<usize>,
}

impl JoinTree {
    /// The root edge index.
    pub fn root(&self) -> usize {
        *self.order.last().expect("join tree of empty query")
    }

    /// Children lists per edge.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (e, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[*p].push(e);
            }
        }
        ch
    }

    /// Top-down order (root first): the reverse of `order`.
    pub fn top_down(&self) -> Vec<usize> {
        self.order.iter().rev().copied().collect()
    }
}
