//! Lemma 2: an acyclic join is **not** r-hierarchical iff it has a *minimal
//! path of length 3*.
//!
//! A path `(x1, x2, x3, x4)` is minimal iff consecutive attributes co-occur
//! in some edge and no edge contains a non-consecutive pair. The lower-bound
//! construction of Theorem 8 embeds the hard line-3 instance along such a
//! path.

use crate::query::{Attr, Query};

/// A witness of a minimal path of length 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinimalPath3 {
    /// The four path attributes `x1, x2, x3, x4`.
    pub attrs: [Attr; 4],
    /// Edges with `{x1,x2} ⊆ e1`, `{x2,x3} ⊆ e2`, `{x3,x4} ⊆ e3`.
    pub edges: [usize; 3],
}

/// Find a minimal path of length 3, if one exists.
///
/// Brute-force over attribute quadruples; queries have constant size so this
/// is fine (`O(n^4 m)`).
pub fn find_minimal_path3(q: &Query) -> Option<MinimalPath3> {
    let n = q.n_attrs();
    // adjacency[x][y] = Some(edge) if some edge contains both.
    let mut adj: Vec<Vec<Option<usize>>> = vec![vec![None; n]; n];
    for (ei, e) in q.edges().iter().enumerate() {
        for (i, &x) in e.attrs.iter().enumerate() {
            for &y in &e.attrs[i + 1..] {
                adj[x][y] = adj[x][y].or(Some(ei));
                adj[y][x] = adj[y][x].or(Some(ei));
            }
        }
    }
    for x1 in 0..n {
        for x2 in 0..n {
            if x2 == x1 || adj[x1][x2].is_none() {
                continue;
            }
            for x3 in 0..n {
                if x3 == x1 || x3 == x2 || adj[x2][x3].is_none() || adj[x1][x3].is_some() {
                    continue;
                }
                for x4 in 0..n {
                    if x4 == x1 || x4 == x2 || x4 == x3 {
                        continue;
                    }
                    if adj[x3][x4].is_some() && adj[x2][x4].is_none() && adj[x1][x4].is_none() {
                        return Some(MinimalPath3 {
                            attrs: [x1, x2, x3, x4],
                            edges: [
                                adj[x1][x2].unwrap(),
                                adj[x2][x3].unwrap(),
                                adj[x3][x4].unwrap(),
                            ],
                        });
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::is_r_hierarchical;
    use crate::query::QueryBuilder;

    fn q(build: impl FnOnce(&mut QueryBuilder)) -> Query {
        let mut b = QueryBuilder::new();
        build(&mut b);
        b.build()
    }

    #[test]
    fn line3_has_minimal_path() {
        let qq = q(|b| {
            b.relation("R1", &["A", "B"]);
            b.relation("R2", &["B", "C"]);
            b.relation("R3", &["C", "D"]);
        });
        let w = find_minimal_path3(&qq).expect("line-3 has a minimal path");
        let names: Vec<&str> = w.attrs.iter().map(|&a| qq.attr_name(a)).collect();
        // A-B-C-D or D-C-B-A.
        assert!(names == ["A", "B", "C", "D"] || names == ["D", "C", "B", "A"]);
    }

    #[test]
    fn r_hierarchical_has_none() {
        let qq = q(|b| {
            b.relation("R1", &["A"]);
            b.relation("R2", &["A", "B"]);
            b.relation("R3", &["B"]);
        });
        assert!(find_minimal_path3(&qq).is_none());
    }

    #[test]
    fn line4_has_minimal_path() {
        let qq = q(|b| {
            b.relation("R1", &["A", "B"]);
            b.relation("R2", &["B", "C"]);
            b.relation("R3", &["C", "D"]);
            b.relation("R4", &["D", "E"]);
        });
        assert!(find_minimal_path3(&qq).is_some());
    }

    #[test]
    fn star_query_has_none() {
        // Star: all relations share the center attribute; reduced query is
        // hierarchical.
        let qq = q(|b| {
            b.relation("R1", &["X", "A"]);
            b.relation("R2", &["X", "B"]);
            b.relation("R3", &["X", "C"]);
        });
        assert!(is_r_hierarchical(&qq));
        assert!(find_minimal_path3(&qq).is_none());
    }

    /// Lemma 2 as a property: for a corpus of acyclic queries, a minimal
    /// path of length 3 exists iff the query is not r-hierarchical.
    #[test]
    fn lemma2_on_query_corpus() {
        let corpus: Vec<Query> = vec![
            q(|b| {
                b.relation("R1", &["A", "B"]);
                b.relation("R2", &["B", "C"]);
            }),
            q(|b| {
                b.relation("R1", &["A", "B"]);
                b.relation("R2", &["B", "C"]);
                b.relation("R3", &["C", "D"]);
            }),
            q(|b| {
                b.relation("R1", &["A"]);
                b.relation("R2", &["A", "B"]);
                b.relation("R3", &["B"]);
            }),
            q(|b| {
                b.relation("R1", &["A", "B", "C"]);
                b.relation("R2", &["B", "C", "D"]);
                b.relation("R3", &["C", "D", "E"]);
            }),
            q(|b| {
                b.relation("R1", &["X", "A"]);
                b.relation("R2", &["X", "B"]);
                b.relation("R3", &["X", "B", "C"]);
            }),
            q(|b| {
                b.relation("R0", &["A", "B", "D", "G"]);
                b.relation("R1", &["A", "B", "C"]);
                b.relation("R2", &["B", "D"]);
                b.relation("R3", &["B"]);
                b.relation("R4", &["A", "D", "E"]);
                b.relation("R5", &["D", "F"]);
                b.relation("R6", &["H"]);
            }),
        ];
        for qq in &corpus {
            assert!(qq.is_acyclic(), "corpus must be acyclic: {qq}");
            let has_path = find_minimal_path3(qq).is_some();
            let rh = is_r_hierarchical(qq);
            assert_eq!(
                has_path, !rh,
                "Lemma 2 violated on {qq}: path={has_path}, r-hier={rh}"
            );
        }
    }
}
