//! Natural-join hypergraphs and database instances.

use crate::sets::{AttrSet, EdgeSet};
use crate::tuple::{Tuple, Value};
use crate::JoinTree;

/// An attribute index into [`Query::attr_names`].
pub type Attr = usize;

/// A hyperedge: one relation symbol of the join, with its attribute list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Human-readable relation name (diagnostics only).
    pub name: String,
    /// Attributes in tuple-layout order (distinct).
    pub attrs: Vec<Attr>,
}

impl Edge {
    /// The attribute set of this edge.
    pub fn attr_set(&self) -> AttrSet {
        AttrSet::from_iter(self.attrs.iter().copied())
    }

    /// Position of attribute `a` within this edge's tuple layout.
    pub fn position_of(&self, a: Attr) -> Option<usize> {
        self.attrs.iter().position(|&x| x == a)
    }

    /// Positions of a list of attributes (all must be present).
    pub fn positions_of(&self, attrs: &[Attr]) -> Vec<usize> {
        attrs
            .iter()
            .map(|&a| {
                self.position_of(a)
                    .unwrap_or_else(|| panic!("attribute {a} not in edge {}", self.name))
            })
            .collect()
    }
}

/// A natural join query `Q = (V, E)`: attributes are vertices, relations are
/// hyperedges. Build one with [`QueryBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    attr_names: Vec<String>,
    edges: Vec<Edge>,
}

/// Incremental construction of a [`Query`] from attribute names.
///
/// ```
/// use aj_relation::QueryBuilder;
/// let mut b = QueryBuilder::new();
/// b.relation("R1", &["A", "B"]);
/// b.relation("R2", &["B", "C"]);
/// let q = b.build();
/// assert_eq!(q.n_attrs(), 3);
/// assert!(q.is_acyclic());
/// ```
#[derive(Debug, Default)]
pub struct QueryBuilder {
    attr_names: Vec<String>,
    edges: Vec<Edge>,
}

impl QueryBuilder {
    /// A builder with no attributes or relations yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an attribute name, returning its index.
    pub fn attr(&mut self, name: &str) -> Attr {
        if let Some(i) = self.attr_names.iter().position(|n| n == name) {
            return i;
        }
        assert!(self.attr_names.len() < 64, "at most 64 attributes");
        self.attr_names.push(name.to_string());
        self.attr_names.len() - 1
    }

    /// Add a relation over the named attributes; returns the edge index.
    ///
    /// # Panics
    /// Panics on duplicate attributes within one relation.
    pub fn relation(&mut self, name: &str, attrs: &[&str]) -> usize {
        assert!(self.edges.len() < 64, "at most 64 relations");
        let attrs: Vec<Attr> = attrs.iter().map(|a| self.attr(a)).collect();
        let set = AttrSet::from_iter(attrs.iter().copied());
        assert_eq!(set.len(), attrs.len(), "duplicate attribute in {name}");
        self.edges.push(Edge {
            name: name.to_string(),
            attrs,
        });
        self.edges.len() - 1
    }

    /// Finish the query.
    ///
    /// # Panics
    /// Panics if no relation was added.
    pub fn build(self) -> Query {
        assert!(!self.edges.is_empty(), "query needs at least one relation");
        Query {
            attr_names: self.attr_names,
            edges: self.edges,
        }
    }
}

impl Query {
    /// Construct directly from parts (for programmatic query surgery).
    pub fn from_parts(attr_names: Vec<String>, edges: Vec<Edge>) -> Self {
        assert!(!edges.is_empty());
        assert!(attr_names.len() <= 64 && edges.len() <= 64);
        Query { attr_names, edges }
    }

    /// Number of attributes `n = |V|`.
    pub fn n_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// Number of relations `m = |E|`.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge by index.
    pub fn edge(&self, e: usize) -> &Edge {
        &self.edges[e]
    }

    /// Attribute name.
    pub fn attr_name(&self, a: Attr) -> &str {
        &self.attr_names[a]
    }

    /// All attribute names (indexed by `Attr`).
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Look up an attribute index by name.
    pub fn attr_by_name(&self, name: &str) -> Option<Attr> {
        self.attr_names.iter().position(|n| n == name)
    }

    /// `E_x`: the set of edges containing attribute `x` (Section 1.4).
    pub fn edges_containing(&self, x: Attr) -> EdgeSet {
        EdgeSet::from_iter(
            self.edges
                .iter()
                .enumerate()
                .filter(|(_, e)| e.attrs.contains(&x))
                .map(|(i, _)| i),
        )
    }

    /// Union of attributes over a set of edges.
    pub fn attrs_of_edges(&self, es: EdgeSet) -> AttrSet {
        let mut s = AttrSet::EMPTY;
        for e in es.iter() {
            s = s.union(self.edges[e].attr_set());
        }
        s
    }

    /// All attributes that occur in some edge.
    pub fn all_attrs(&self) -> AttrSet {
        self.attrs_of_edges(EdgeSet::all(self.n_edges()))
    }

    /// GYO ear-removal: returns a join tree iff the query is α-acyclic.
    ///
    /// An edge `e` is an *ear* if all of its attributes shared with other
    /// remaining edges are contained in a single other remaining edge `e'`
    /// (its *witness*), which becomes its parent.
    pub fn join_tree(&self) -> Option<JoinTree> {
        let m = self.n_edges();
        let mut alive: Vec<bool> = vec![true; m];
        let mut remaining = m;
        let mut parent: Vec<Option<usize>> = vec![None; m];
        let mut order: Vec<usize> = Vec::with_capacity(m);
        while remaining > 1 {
            let mut removed_any = false;
            'outer: for e in 0..m {
                if !alive[e] {
                    continue;
                }
                // Attributes of e shared with any other alive edge.
                let mut shared = AttrSet::EMPTY;
                for (o, &o_alive) in alive.iter().enumerate() {
                    if o != e && o_alive {
                        shared = shared
                            .union(self.edges[e].attr_set().intersect(self.edges[o].attr_set()));
                    }
                }
                for w in 0..m {
                    if w != e && alive[w] && shared.is_subset(self.edges[w].attr_set()) {
                        parent[e] = Some(w);
                        alive[e] = false;
                        order.push(e);
                        remaining -= 1;
                        removed_any = true;
                        break 'outer;
                    }
                }
            }
            if !removed_any {
                return None; // cyclic
            }
        }
        let root = (0..m).find(|&e| alive[e]).expect("nonempty query");
        order.push(root);
        Some(JoinTree { parent, order })
    }

    /// Whether the query is α-acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.join_tree().is_some()
    }

    /// The *reduce* procedure (Section 1.4): repeatedly remove an edge that
    /// is contained in another edge. Returns the reduced query and the
    /// indices of the surviving edges (into `self`).
    ///
    /// Ties between equal attribute sets keep the lower-indexed edge.
    pub fn reduce(&self) -> (Query, Vec<usize>) {
        let m = self.n_edges();
        let mut keep: Vec<bool> = vec![true; m];
        for e in 0..m {
            if !keep[e] {
                continue;
            }
            for o in 0..m {
                if o == e || !keep[o] {
                    continue;
                }
                let se = self.edges[e].attr_set();
                let so = self.edges[o].attr_set();
                let strictly_contained = se.is_subset(so) && se != so;
                let equal_and_later = se == so && e > o;
                if strictly_contained || equal_and_later {
                    keep[e] = false;
                    break;
                }
            }
        }
        let kept: Vec<usize> = (0..m).filter(|&e| keep[e]).collect();
        let edges = kept.iter().map(|&e| self.edges[e].clone()).collect();
        (
            Query {
                attr_names: self.attr_names.clone(),
                edges,
            },
            kept,
        )
    }

    /// Connected components of the hypergraph (edges sharing an attribute
    /// are connected). Returned as edge sets.
    pub fn connected_components(&self) -> Vec<EdgeSet> {
        let m = self.n_edges();
        let mut comp: Vec<Option<usize>> = vec![None; m];
        let mut comps: Vec<EdgeSet> = Vec::new();
        for start in 0..m {
            if comp[start].is_some() {
                continue;
            }
            let id = comps.len();
            let mut members = EdgeSet::EMPTY;
            let mut stack = vec![start];
            comp[start] = Some(id);
            while let Some(e) = stack.pop() {
                members.insert(e);
                #[allow(clippy::needless_range_loop)] // comp is mutated inside
                for o in 0..m {
                    if comp[o].is_none()
                        && !self.edges[e]
                            .attr_set()
                            .intersect(self.edges[o].attr_set())
                            .is_empty()
                    {
                        comp[o] = Some(id);
                        stack.push(o);
                    }
                }
            }
            comps.push(members);
        }
        comps
    }

    /// Restrict the query to a subset of edges (attribute indices are kept,
    /// so tuples remain compatible). Returns the sub-query and the kept edge
    /// indices in order.
    pub fn restrict(&self, es: EdgeSet) -> (Query, Vec<usize>) {
        let kept: Vec<usize> = es.iter().filter(|&e| e < self.n_edges()).collect();
        assert!(!kept.is_empty());
        (
            Query {
                attr_names: self.attr_names.clone(),
                edges: kept.iter().map(|&e| self.edges[e].clone()).collect(),
            },
            kept,
        )
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, " ⋈ ")?;
            }
            write!(f, "{}(", e.name)?;
            for (k, &a) in e.attrs.iter().enumerate() {
                if k > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.attr_names[a])?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// One relation instance: tuples laid out in the attribute order of the
/// corresponding [`Edge`]. Set semantics (duplicates are allowed in the
/// container but treated as one logical tuple; generators produce sets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Attribute layout, mirroring `Edge::attrs`.
    pub attrs: Vec<Attr>,
    /// The tuples (may carry extra trailing annotation columns).
    pub tuples: Vec<Tuple>,
}

impl Relation {
    /// A relation from a layout and its tuples (tuples may carry extra
    /// trailing columns, e.g. annotations).
    pub fn new(attrs: Vec<Attr>, tuples: Vec<Tuple>) -> Self {
        // Tuples may carry extra trailing columns (e.g. annotations).
        debug_assert!(tuples.iter().all(|t| t.arity() >= attrs.len()));
        Relation { attrs, tuples }
    }

    /// An empty relation with the given layout.
    pub fn empty(attrs: Vec<Attr>) -> Self {
        Relation {
            attrs,
            tuples: Vec::new(),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Does the relation hold no tuples?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Positions of `attrs` within this relation's layout.
    pub fn positions_of(&self, attrs: &[Attr]) -> Vec<usize> {
        attrs
            .iter()
            .map(|&a| {
                self.attrs
                    .iter()
                    .position(|&x| x == a)
                    .unwrap_or_else(|| panic!("attribute {a} not in relation"))
            })
            .collect()
    }

    /// Project a tuple of this relation onto the given attributes.
    pub fn key_of(&self, t: &Tuple, attrs: &[Attr]) -> Tuple {
        t.project(&self.positions_of(attrs))
    }

    /// Deduplicate tuples (set semantics normalization).
    pub fn dedup(&mut self) {
        self.tuples.sort_unstable();
        self.tuples.dedup();
    }
}

/// A database instance: one [`Relation`] per query edge, aligned by index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Database {
    /// One relation per query edge, aligned by index.
    pub relations: Vec<Relation>,
}

impl Database {
    /// A database from its per-edge relations.
    pub fn new(relations: Vec<Relation>) -> Self {
        Database { relations }
    }

    /// `IN`: the total number of tuples.
    pub fn input_size(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Restrict to the given edges, aligned with [`Query::restrict`].
    pub fn restrict(&self, kept: &[usize]) -> Database {
        Database {
            relations: kept.iter().map(|&e| self.relations[e].clone()).collect(),
        }
    }

    /// Normalize every relation to set semantics (sort + dedup in place).
    pub fn dedup_all(&mut self) {
        for r in &mut self.relations {
            r.dedup();
        }
    }

    /// Check layout compatibility with a query.
    pub fn matches(&self, q: &Query) -> bool {
        self.relations.len() == q.n_edges()
            && self
                .relations
                .iter()
                .zip(q.edges())
                .all(|(r, e)| r.attrs == e.attrs)
    }
}

/// Build a [`Database`] for `q` from per-edge tuple lists given as value
/// vectors (convenience for tests and examples).
pub fn database_from_rows(q: &Query, rows: &[Vec<Vec<Value>>]) -> Database {
    assert_eq!(rows.len(), q.n_edges());
    Database::new(
        q.edges()
            .iter()
            .zip(rows)
            .map(|(e, rs)| {
                Relation::new(
                    e.attrs.clone(),
                    rs.iter().map(|r| Tuple::new(r.clone())).collect(),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> Query {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["A", "B"]);
        b.relation("R2", &["B", "C"]);
        b.relation("R3", &["C", "D"]);
        b.build()
    }

    fn triangle() -> Query {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["B", "C"]);
        b.relation("R2", &["A", "C"]);
        b.relation("R3", &["A", "B"]);
        b.build()
    }

    #[test]
    fn builder_interns_attrs() {
        let q = line3();
        assert_eq!(q.n_attrs(), 4);
        assert_eq!(q.n_edges(), 3);
        assert_eq!(q.attr_by_name("B"), Some(1));
        assert_eq!(q.edge(1).attrs, vec![1, 2]);
    }

    #[test]
    fn line3_is_acyclic_with_valid_tree() {
        let q = line3();
        let t = q.join_tree().expect("acyclic");
        assert_eq!(t.order.len(), 3);
        // Exactly one root.
        assert_eq!(t.parent.iter().filter(|p| p.is_none()).count(), 1);
        // Connectivity property: for each attr, edges containing it form a
        // connected subtree. Spot-check B: contained in R1, R2; they must be
        // adjacent in the tree.
        let b_edges: Vec<usize> = q.edges_containing(1).to_vec();
        assert_eq!(b_edges, vec![0, 1]);
    }

    #[test]
    fn triangle_is_cyclic() {
        assert!(!triangle().is_acyclic());
    }

    #[test]
    fn triangle_plus_big_edge_is_acyclic() {
        // α-acyclicity is not hereditary: adding {A,B,C} makes it acyclic.
        let mut b = QueryBuilder::new();
        b.relation("R1", &["B", "C"]);
        b.relation("R2", &["A", "C"]);
        b.relation("R3", &["A", "B"]);
        b.relation("R4", &["A", "B", "C"]);
        assert!(b.build().is_acyclic());
    }

    #[test]
    fn reduce_removes_contained_edges() {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["A"]);
        b.relation("R2", &["A", "B"]);
        b.relation("R3", &["B"]);
        let q = b.build();
        let (r, kept) = q.reduce();
        assert_eq!(kept, vec![1]);
        assert_eq!(r.n_edges(), 1);
    }

    #[test]
    fn reduce_keeps_one_of_equal_edges() {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["A", "B"]);
        b.relation("R2", &["A", "B"]);
        let (r, kept) = b.build().reduce();
        assert_eq!(r.n_edges(), 1);
        assert_eq!(kept, vec![0]);
    }

    #[test]
    fn components() {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["A", "B"]);
        b.relation("R2", &["B", "C"]);
        b.relation("R3", &["X"]);
        let q = b.build();
        let comps = q.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].to_vec(), vec![0, 1]);
        assert_eq!(comps[1].to_vec(), vec![2]);
    }

    #[test]
    fn disconnected_query_still_acyclic() {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["A"]);
        b.relation("R2", &["B"]);
        b.relation("R3", &["C"]);
        assert!(b.build().is_acyclic());
    }

    #[test]
    fn restrict_subquery() {
        let q = line3();
        let (sub, kept) = q.restrict(EdgeSet::from_iter([0, 2]));
        assert_eq!(kept, vec![0, 2]);
        assert_eq!(sub.n_edges(), 2);
        assert_eq!(sub.edge(1).name, "R3");
    }

    #[test]
    fn database_roundtrip() {
        let q = line3();
        let db = database_from_rows(
            &q,
            &[
                vec![vec![1, 2], vec![3, 2]],
                vec![vec![2, 5]],
                vec![vec![5, 9]],
            ],
        );
        assert!(db.matches(&q));
        assert_eq!(db.input_size(), 4);
        let keyed = db.relations[0].key_of(&db.relations[0].tuples[0], &[1]);
        assert_eq!(keyed, Tuple::from([2]));
    }

    #[test]
    fn display_query() {
        let q = line3();
        assert_eq!(format!("{q}"), "R1(A,B) ⋈ R2(B,C) ⋈ R3(C,D)");
    }
}
