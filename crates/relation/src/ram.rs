//! The RAM-model reference engine: the classical Yannakakis algorithm.
//!
//! Used as (a) the correctness oracle for every MPC algorithm, (b) the exact
//! calculator of `OUT` and the per-instance quantities `|Q(R,S)|` that define
//! the lower bound `L_instance` (Eq. (2) of the paper).
//!
//! All functions assume **set semantics**; [`count`] and friends deduplicate
//! defensively.

use crate::fxhash::{fx_map_with_capacity, FxHashMap, FxHashSet};
use crate::query::{Attr, Database, Query, Relation};
use crate::sets::EdgeSet;
use crate::tuple::Tuple;

/// In-memory semi-join `r1 ⋉ r2` on their shared attributes.
pub fn semi_join(r1: &Relation, r2: &Relation) -> Relation {
    let shared: Vec<Attr> = r1
        .attrs
        .iter()
        .copied()
        .filter(|a| r2.attrs.contains(a))
        .collect();
    if shared.is_empty() {
        // Degenerate semi-join: keep all of r1 iff r2 is non-empty.
        return if r2.is_empty() {
            Relation::empty(r1.attrs.clone())
        } else {
            r1.clone()
        };
    }
    let pos2 = r2.positions_of(&shared);
    let keys: FxHashSet<Tuple> = r2.tuples.iter().map(|t| t.project(&pos2)).collect();
    let pos1 = r1.positions_of(&shared);
    Relation::new(
        r1.attrs.clone(),
        r1.tuples
            .iter()
            .filter(|t| keys.contains(&t.project(&pos1)))
            .cloned()
            .collect(),
    )
}

/// Remove all dangling tuples: the full reducer (two semi-join sweeps along
/// a join tree). Every surviving tuple participates in at least one join
/// result.
///
/// # Panics
/// Panics if the query is cyclic.
pub fn full_reduce(q: &Query, db: &Database) -> Database {
    let tree = q
        .join_tree()
        .expect("full_reduce requires an acyclic query");
    let mut rels: Vec<Relation> = db.relations.clone();
    // Upward sweep (leaves first): parent ⋉ child.
    for &e in &tree.order {
        if let Some(p) = tree.parent[e] {
            rels[p] = semi_join(&rels[p], &rels[e]);
        }
    }
    // Downward sweep (root first): child ⋉ parent.
    for &e in tree.order.iter().rev() {
        if let Some(p) = tree.parent[e] {
            rels[e] = semi_join(&rels[e], &rels[p]);
        }
    }
    Database::new(rels)
}

/// Compute the full join `Q(R)` with the Yannakakis algorithm.
///
/// Returns the output schema (all occurring attributes, ascending) and the
/// result tuples in that layout. Intermediate results never exceed
/// `O(IN + OUT)` thanks to the preliminary full reduction.
pub fn join(q: &Query, db: &Database) -> (Vec<Attr>, Vec<Tuple>) {
    let tree = q.join_tree().expect("join requires an acyclic query");
    let db = full_reduce(q, db);
    let mut acc_attrs: Vec<Attr> = Vec::new();
    let mut acc: Vec<Tuple> = vec![Tuple::unit()];
    for &e in tree.order.iter().rev() {
        let rel = &db.relations[e];
        let shared: Vec<Attr> = acc_attrs
            .iter()
            .copied()
            .filter(|a| rel.attrs.contains(a))
            .collect();
        let extra_pos: Vec<usize> = rel
            .attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| !acc_attrs.contains(a))
            .map(|(i, _)| i)
            .collect();
        let rel_key_pos = rel.positions_of(&shared);
        let acc_key_pos: Vec<usize> = shared
            .iter()
            .map(|a| acc_attrs.iter().position(|x| x == a).unwrap())
            .collect();
        // Index the relation by the shared key.
        let mut index: FxHashMap<Tuple, Vec<Tuple>> = FxHashMap::default();
        for t in &rel.tuples {
            index
                .entry(t.project(&rel_key_pos))
                .or_default()
                .push(t.project(&extra_pos));
        }
        let mut next: Vec<Tuple> = Vec::new();
        for t in &acc {
            if let Some(exts) = index.get(&t.project(&acc_key_pos)) {
                for ext in exts {
                    next.push(t.concat(ext));
                }
            }
        }
        acc = next;
        for (i, &a) in rel.attrs.iter().enumerate() {
            if extra_pos.contains(&i) {
                acc_attrs.push(a);
            }
        }
    }
    // Normalize column order to ascending attribute index.
    let mut order: Vec<usize> = (0..acc_attrs.len()).collect();
    order.sort_by_key(|&i| acc_attrs[i]);
    let sorted_attrs: Vec<Attr> = order.iter().map(|&i| acc_attrs[i]).collect();
    let tuples = acc.iter().map(|t| t.project(&order)).collect();
    (sorted_attrs, tuples)
}

/// `OUT = |Q(R)|` via Yannakakis counting (no enumeration): annotate every
/// tuple with 1 and sum-product along the join tree. Linear time in `IN`.
pub fn count(q: &Query, db: &Database) -> u64 {
    let tree = q.join_tree().expect("count requires an acyclic query");
    // weights[e]: tuple -> weight, deduplicated (set semantics).
    let mut weights: Vec<FxHashMap<Tuple, u64>> = db
        .relations
        .iter()
        .map(|r| {
            let mut m = fx_map_with_capacity(r.len());
            for t in &r.tuples {
                m.insert(t.clone(), 1u64);
            }
            m
        })
        .collect();
    for &e in &tree.order {
        let Some(p) = tree.parent[e] else { continue };
        let shared: Vec<Attr> = db.relations[e]
            .attrs
            .iter()
            .copied()
            .filter(|a| db.relations[p].attrs.contains(a))
            .collect();
        let pos_e = db.relations[e].positions_of(&shared);
        let pos_p = db.relations[p].positions_of(&shared);
        // Message: key -> Σ weights of child tuples.
        let mut msg: FxHashMap<Tuple, u64> = FxHashMap::default();
        for (t, w) in &weights[e] {
            *msg.entry(t.project(&pos_e)).or_insert(0) = msg
                .get(&t.project(&pos_e))
                .copied()
                .unwrap_or(0)
                .saturating_add(*w);
        }
        // Absorb into parent: multiply, dropping unmatched tuples.
        let parent_map = std::mem::take(&mut weights[p]);
        weights[p] = parent_map
            .into_iter()
            .filter_map(|(t, w)| {
                msg.get(&t.project(&pos_p))
                    .map(|&m| (t, w.saturating_mul(m)))
            })
            .collect();
    }
    weights[tree.root()]
        .values()
        .fold(0u64, |a, &b| a.saturating_add(b))
}

/// `|Q(R,S)|` (Section 1.5): the number of join results of the relations in
/// `S` that extend to a full join result. Under set semantics this equals the
/// number of distinct projections of `Q(R)` onto the attributes of `S`.
///
/// Cost: one full join enumeration — use at experiment scale only.
pub fn q_r_s_sizes(q: &Query, db: &Database, subsets: &[EdgeSet]) -> Vec<u64> {
    let (schema, results) = join(q, db);
    subsets
        .iter()
        .map(|&s| {
            if s.is_empty() {
                return if results.is_empty() { 0 } else { 1 };
            }
            let attrs = q.attrs_of_edges(s);
            let pos: Vec<usize> = schema
                .iter()
                .enumerate()
                .filter(|(_, a)| attrs.contains(**a))
                .map(|(i, _)| i)
                .collect();
            let distinct: FxHashSet<Tuple> = results.iter().map(|t| t.project(&pos)).collect();
            distinct.len() as u64
        })
        .collect()
}

/// Naive join by exhaustive combination — exponential; only for validating
/// the oracle itself on tiny instances.
pub fn naive_join(q: &Query, db: &Database) -> Vec<Tuple> {
    let n = q.n_attrs();
    let mut out = Vec::new();
    fn rec(
        q: &Query,
        db: &Database,
        e: usize,
        assignment: &mut Vec<Option<u64>>,
        out: &mut Vec<Tuple>,
    ) {
        if e == q.n_edges() {
            let vals: Vec<u64> = assignment.iter().map(|v| v.unwrap_or(0)).collect();
            // Only occurring attributes matter; unused stay 0.
            out.push(Tuple::new(vals));
            return;
        }
        'tuples: for t in &db.relations[e].tuples {
            let mut touched = Vec::new();
            for (i, &a) in db.relations[e].attrs.iter().enumerate() {
                match assignment[a] {
                    Some(v) if v != t.get(i) => {
                        for &a2 in &touched {
                            assignment[a2] = None;
                        }
                        continue 'tuples;
                    }
                    Some(_) => {}
                    None => {
                        assignment[a] = Some(t.get(i));
                        touched.push(a);
                    }
                }
            }
            rec(q, db, e + 1, assignment, out);
            for &a2 in &touched {
                assignment[a2] = None;
            }
        }
    }
    rec(q, db, 0, &mut vec![None; n], &mut out);
    // Project to occurring attrs, ascending, to match `join`'s layout.
    let occurring: Vec<usize> = (0..n)
        .filter(|&a| !q.edges_containing(a).is_empty())
        .collect();
    let mut res: Vec<Tuple> = out.iter().map(|t| t.project(&occurring)).collect();
    res.sort_unstable();
    res.dedup();
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{database_from_rows, QueryBuilder};

    fn line3() -> Query {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["A", "B"]);
        b.relation("R2", &["B", "C"]);
        b.relation("R3", &["C", "D"]);
        b.build()
    }

    fn small_db(q: &Query) -> Database {
        database_from_rows(
            q,
            &[
                vec![vec![1, 10], vec![2, 10], vec![3, 11], vec![4, 99]],
                vec![vec![10, 20], vec![10, 21], vec![11, 20]],
                vec![vec![20, 7], vec![21, 7], vec![50, 1]],
            ],
        )
    }

    #[test]
    fn semi_join_filters() {
        let q = line3();
        let db = small_db(&q);
        let s = semi_join(&db.relations[0], &db.relations[1]);
        // B=99 has no match in R2.
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn semi_join_disjoint_schemas() {
        let r1 = Relation::new(vec![0], vec![Tuple::from([1])]);
        let r2 = Relation::new(vec![1], vec![Tuple::from([5])]);
        assert_eq!(semi_join(&r1, &r2).len(), 1);
        let empty = Relation::empty(vec![1]);
        assert_eq!(semi_join(&r1, &empty).len(), 0);
    }

    #[test]
    fn full_reduce_removes_dangling() {
        let q = line3();
        let db = small_db(&q);
        let red = full_reduce(&q, &db);
        // (4,99) in R1 dangles; (50,1) in R3 dangles.
        assert_eq!(red.relations[0].len(), 3);
        assert_eq!(red.relations[2].len(), 2);
        // Every remaining tuple participates: re-reducing is a fixpoint.
        assert_eq!(full_reduce(&q, &red), red);
    }

    #[test]
    fn join_matches_naive() {
        let q = line3();
        let db = small_db(&q);
        let (schema, mut tuples) = join(&q, &db);
        assert_eq!(schema, vec![0, 1, 2, 3]);
        tuples.sort_unstable();
        let naive = naive_join(&q, &db);
        assert_eq!(tuples, naive);
        assert_eq!(tuples.len(), 5);
    }

    #[test]
    fn count_matches_join() {
        let q = line3();
        let db = small_db(&q);
        let (_, tuples) = join(&q, &db);
        assert_eq!(count(&q, &db), tuples.len() as u64);
    }

    #[test]
    fn count_empty_result() {
        let q = line3();
        let db = database_from_rows(&q, &[vec![vec![1, 2]], vec![vec![3, 4]], vec![vec![5, 6]]]);
        assert_eq!(count(&q, &db), 0);
        let (_, tuples) = join(&q, &db);
        assert!(tuples.is_empty());
    }

    #[test]
    fn cartesian_product_count() {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["A"]);
        b.relation("R2", &["B"]);
        let q = b.build();
        let db = database_from_rows(
            &q,
            &[vec![vec![1], vec![2]], vec![vec![7], vec![8], vec![9]]],
        );
        assert_eq!(count(&q, &db), 6);
        let (schema, tuples) = join(&q, &db);
        assert_eq!(schema, vec![0, 1]);
        assert_eq!(tuples.len(), 6);
    }

    #[test]
    fn q_r_s_on_line3() {
        let q = line3();
        let db = small_db(&q);
        let s_all = EdgeSet::all(3);
        let s1 = EdgeSet::singleton(0);
        let sizes = q_r_s_sizes(&q, &db, &[s_all, s1]);
        // |Q(R, E)| = OUT = 5; |Q(R,{R1})| = non-dangling R1 tuples = 3.
        assert_eq!(sizes, vec![5, 3]);
    }

    #[test]
    fn star_join_correctness() {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["X", "A"]);
        b.relation("R2", &["X", "B"]);
        b.relation("R3", &["X", "C"]);
        let q = b.build();
        let db = database_from_rows(
            &q,
            &[
                vec![vec![1, 100], vec![1, 101], vec![2, 102]],
                vec![vec![1, 200], vec![2, 201], vec![2, 202]],
                vec![vec![1, 300], vec![3, 301]],
            ],
        );
        let (_, tuples) = join(&q, &db);
        let naive = naive_join(&q, &db);
        let mut sorted = tuples.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, naive);
        assert_eq!(count(&q, &db), naive.len() as u64);
        // X=1: 2×1×1 = 2 results; X=2: no R3 match; X=3: no R1/R2.
        assert_eq!(naive.len(), 2);
    }
}
