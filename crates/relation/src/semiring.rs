//! Commutative semirings for join-aggregate queries (Section 6).
//!
//! A join-aggregate query annotates every tuple with an element of a
//! commutative semiring `(R, ⊕, ⊗)`; a join result's annotation is the
//! ⊗-product of its constituent tuples, and grouping ⊕-sums annotations.

use crate::query::Relation;
use crate::tuple::Tuple;

/// A commutative semiring over copyable values.
pub trait Semiring {
    /// The carrier type.
    type T: Copy + Clone + std::fmt::Debug + PartialEq + Send + Sync + 'static;
    /// ⊕-identity.
    fn zero() -> Self::T;
    /// ⊗-identity.
    fn one() -> Self::T;
    /// ⊕ (commutative, associative, identity `zero`).
    fn add(a: Self::T, b: Self::T) -> Self::T;
    /// ⊗ (commutative, associative, identity `one`, distributes over ⊕).
    fn mul(a: Self::T, b: Self::T) -> Self::T;
    /// Encode a carrier value into a `u64` so annotations can ride along
    /// tuple columns through the MPC join algorithms.
    fn to_u64(v: Self::T) -> u64;
    /// Inverse of [`Semiring::to_u64`].
    fn from_u64(v: u64) -> Self::T;
}

/// The counting semiring `(u64, +, ×)`: COUNT / SUM style aggregates.
/// Saturating to avoid overflow panics on astronomically large joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountRing;

impl Semiring for CountRing {
    type T = u64;
    fn zero() -> u64 {
        0
    }
    fn one() -> u64 {
        1
    }
    fn add(a: u64, b: u64) -> u64 {
        a.saturating_add(b)
    }
    fn mul(a: u64, b: u64) -> u64 {
        a.saturating_mul(b)
    }
    fn to_u64(v: u64) -> u64 {
        v
    }
    fn from_u64(v: u64) -> u64 {
        v
    }
}

/// The **signed counting ring** `(i64, +, ×)` — the counting semiring
/// [`CountRing`] extended with additive inverses, which is exactly what
/// incremental view maintenance needs: an inserted tuple carries `+1`, a
/// deleted tuple `-1`, a join derivation the product of its inputs'
/// weights, and a counted materialization the per-tuple sum. Deletions are
/// then exact decrements — no re-derivation scan (see
/// [`crate::delta`]). Saturating like [`CountRing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZRing;

impl Semiring for ZRing {
    type T = i64;
    fn zero() -> i64 {
        0
    }
    fn one() -> i64 {
        1
    }
    fn add(a: i64, b: i64) -> i64 {
        a.saturating_add(b)
    }
    fn mul(a: i64, b: i64) -> i64 {
        a.saturating_mul(b)
    }
    fn to_u64(v: i64) -> u64 {
        v as u64 // two's-complement bit cast, inverted by from_u64
    }
    fn from_u64(v: u64) -> i64 {
        v as i64
    }
}

/// The Boolean semiring `(bool, ∨, ∧)`: EXISTS-style queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoolRing;

impl Semiring for BoolRing {
    type T = bool;
    fn zero() -> bool {
        false
    }
    fn one() -> bool {
        true
    }
    fn add(a: bool, b: bool) -> bool {
        a || b
    }
    fn mul(a: bool, b: bool) -> bool {
        a && b
    }
    fn to_u64(v: bool) -> u64 {
        v as u64
    }
    fn from_u64(v: u64) -> bool {
        v != 0
    }
}

/// The tropical semiring `(u64 ∪ {∞}, min, +)`: shortest-path / MIN
/// aggregates. `u64::MAX` plays ∞.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type T = u64;
    fn zero() -> u64 {
        u64::MAX
    }
    fn one() -> u64 {
        0
    }
    fn add(a: u64, b: u64) -> u64 {
        a.min(b)
    }
    fn mul(a: u64, b: u64) -> u64 {
        a.saturating_add(b)
    }
    fn to_u64(v: u64) -> u64 {
        v
    }
    fn from_u64(v: u64) -> u64 {
        v
    }
}

/// A relation whose tuples carry semiring annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnRelation<S: Semiring> {
    /// Attribute layout, mirroring the query edge.
    pub attrs: Vec<crate::query::Attr>,
    /// `(tuple, annotation)` pairs.
    pub tuples: Vec<(Tuple, S::T)>,
}

impl<S: Semiring> AnnRelation<S> {
    /// Annotate every tuple of a plain relation with ⊗-identity.
    pub fn from_relation(r: &Relation) -> Self {
        AnnRelation {
            attrs: r.attrs.clone(),
            tuples: r.tuples.iter().map(|t| (t.clone(), S::one())).collect(),
        }
    }

    /// With explicit annotations.
    pub fn new(attrs: Vec<crate::query::Attr>, tuples: Vec<(Tuple, S::T)>) -> Self {
        AnnRelation { attrs, tuples }
    }

    /// Number of annotated tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Does the relation hold no tuples?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Positions of `attrs` in this relation's layout.
    pub fn positions_of(&self, attrs: &[crate::query::Attr]) -> Vec<usize> {
        attrs
            .iter()
            .map(|&a| {
                self.attrs
                    .iter()
                    .position(|&x| x == a)
                    .expect("attribute not in annotated relation")
            })
            .collect()
    }

    /// ⊕-combine duplicate tuples (normalization under set semantics).
    pub fn combine_duplicates(&mut self) {
        use crate::fxhash::{fx_map_with_capacity, FxHashMap};
        let mut agg: FxHashMap<Tuple, S::T> = fx_map_with_capacity(self.tuples.len());
        for (t, w) in self.tuples.drain(..) {
            agg.entry(t)
                .and_modify(|acc| *acc = S::add(*acc, w))
                .or_insert(w);
        }
        let mut out: Vec<(Tuple, S::T)> = agg.into_iter().collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        self.tuples = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laws<S: Semiring>(samples: &[S::T]) {
        for &a in samples {
            assert_eq!(S::add(a, S::zero()), a, "⊕ identity");
            assert_eq!(S::mul(a, S::one()), a, "⊗ identity");
            assert_eq!(S::mul(a, S::zero()), S::zero(), "⊗ annihilator");
            for &b in samples {
                assert_eq!(S::add(a, b), S::add(b, a), "⊕ commutes");
                assert_eq!(S::mul(a, b), S::mul(b, a), "⊗ commutes");
                for &c in samples {
                    assert_eq!(
                        S::mul(a, S::add(b, c)),
                        S::add(S::mul(a, b), S::mul(a, c)),
                        "distributivity"
                    );
                }
            }
        }
    }

    #[test]
    fn count_ring_laws() {
        laws::<CountRing>(&[0, 1, 2, 7, 100]);
    }

    #[test]
    fn bool_ring_laws() {
        laws::<BoolRing>(&[false, true]);
    }

    #[test]
    fn z_ring_laws_and_inverses() {
        laws::<ZRing>(&[-7, -1, 0, 1, 2, 100]);
        // The ring structure beyond a semiring: additive inverses, which is
        // what makes deletion weights exact.
        for w in [-5i64, -1, 0, 1, 9] {
            assert_eq!(ZRing::add(w, -w), ZRing::zero());
            assert_eq!(ZRing::from_u64(ZRing::to_u64(w)), w);
        }
    }

    #[test]
    fn min_plus_laws() {
        laws::<MinPlus>(&[0, 1, 5, 1000, u64::MAX]);
    }

    #[test]
    fn annotate_relation() {
        let r = Relation::new(vec![0, 1], vec![Tuple::from([1, 2]), Tuple::from([3, 4])]);
        let a = AnnRelation::<CountRing>::from_relation(&r);
        assert_eq!(a.len(), 2);
        assert!(a.tuples.iter().all(|&(_, w)| w == 1));
    }

    #[test]
    fn combine_duplicates_sums() {
        let mut a = AnnRelation::<CountRing>::new(
            vec![0],
            vec![
                (Tuple::from([1]), 2),
                (Tuple::from([1]), 3),
                (Tuple::from([2]), 1),
            ],
        );
        a.combine_duplicates();
        assert_eq!(a.tuples, vec![(Tuple::from([1]), 5), (Tuple::from([2]), 1)]);
    }
}
