//! Small bitset types for attribute and edge sets.
//!
//! Queries have constantly many attributes and relations (data complexity),
//! so 64-bit masks suffice; constructors enforce the limits.

macro_rules! bitset {
    ($name:ident, $doc:literal) => {
        #[doc = $doc]
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// The empty set.
            pub const EMPTY: $name = $name(0);

            /// Singleton set `{i}`.
            pub fn singleton(i: usize) -> Self {
                assert!(i < 64, "index {i} out of bitset range");
                $name(1 << i)
            }

            /// Set of all `0..n`.
            pub fn all(n: usize) -> Self {
                assert!(n <= 64);
                if n == 64 {
                    $name(u64::MAX)
                } else {
                    $name((1u64 << n) - 1)
                }
            }

            /// From an iterator of indices (inherent, not the trait method).
            #[allow(clippy::should_implement_trait)]
            pub fn from_iter(it: impl IntoIterator<Item = usize>) -> Self {
                let mut s = $name(0);
                for i in it {
                    s.insert(i);
                }
                s
            }

            /// Insert `i`.
            pub fn insert(&mut self, i: usize) {
                assert!(i < 64, "index {i} out of bitset range");
                self.0 |= 1 << i;
            }

            /// Remove `i` (no-op if absent).
            pub fn remove(&mut self, i: usize) {
                self.0 &= !(1u64 << i);
            }

            /// Is `i` a member?
            pub fn contains(&self, i: usize) -> bool {
                i < 64 && (self.0 >> i) & 1 == 1
            }

            /// Is the set empty?
            pub fn is_empty(&self) -> bool {
                self.0 == 0
            }

            /// Number of members.
            pub fn len(&self) -> usize {
                self.0.count_ones() as usize
            }

            /// Set union.
            pub fn union(self, other: Self) -> Self {
                $name(self.0 | other.0)
            }

            /// Set intersection.
            pub fn intersect(self, other: Self) -> Self {
                $name(self.0 & other.0)
            }

            /// Set difference `self \\ other`.
            pub fn minus(self, other: Self) -> Self {
                $name(self.0 & !other.0)
            }

            /// Is `self ⊆ other`?
            pub fn is_subset(self, other: Self) -> bool {
                self.0 & !other.0 == 0
            }

            /// Is `self ⊇ other`?
            pub fn is_superset(self, other: Self) -> bool {
                other.is_subset(self)
            }

            /// Iterate members in increasing order.
            pub fn iter(self) -> impl Iterator<Item = usize> {
                (0..64).filter(move |&i| (self.0 >> i) & 1 == 1)
            }

            /// Members as a `Vec`.
            pub fn to_vec(self) -> Vec<usize> {
                self.iter().collect()
            }

            /// Iterate all subsets of `self` (including empty and full),
            /// 2^|self| of them.
            pub fn subsets(self) -> impl Iterator<Item = Self> {
                let full = self.0;
                let mut cur: u64 = 0;
                let mut done = false;
                std::iter::from_fn(move || {
                    if done {
                        return None;
                    }
                    let out = $name(cur);
                    if cur == full {
                        done = true;
                    } else {
                        cur = (cur.wrapping_sub(full)) & full;
                    }
                    Some(out)
                })
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{{")?;
                for (k, i) in self.iter().enumerate() {
                    if k > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{i}")?;
                }
                write!(f, "}}")
            }
        }
    };
}

bitset!(
    AttrSet,
    "A set of attribute indices (bitset, ≤ 64 attributes)."
);
bitset!(
    EdgeSet,
    "A set of edge (relation) indices (bitset, ≤ 64 edges)."
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = AttrSet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(5);
        assert!(s.contains(3) && s.contains(5) && !s.contains(4));
        assert_eq!(s.len(), 2);
        s.remove(3);
        assert_eq!(s.to_vec(), vec![5]);
    }

    #[test]
    fn algebra() {
        let a = AttrSet::from_iter([0, 1, 2]);
        let b = AttrSet::from_iter([2, 3]);
        assert_eq!(a.union(b), AttrSet::from_iter([0, 1, 2, 3]));
        assert_eq!(a.intersect(b), AttrSet::from_iter([2]));
        assert_eq!(a.minus(b), AttrSet::from_iter([0, 1]));
        assert!(AttrSet::from_iter([1]).is_subset(a));
        assert!(a.is_superset(AttrSet::from_iter([1])));
        assert!(!b.is_subset(a));
    }

    #[test]
    fn all_and_singleton() {
        assert_eq!(EdgeSet::all(3).to_vec(), vec![0, 1, 2]);
        assert_eq!(EdgeSet::singleton(7).to_vec(), vec![7]);
        assert_eq!(AttrSet::all(64).len(), 64);
    }

    #[test]
    fn subsets_enumeration() {
        let s = EdgeSet::from_iter([1, 4]);
        let subs: Vec<_> = s.subsets().collect();
        assert_eq!(subs.len(), 4);
        assert!(subs.contains(&EdgeSet::EMPTY));
        assert!(subs.contains(&EdgeSet::from_iter([1])));
        assert!(subs.contains(&EdgeSet::from_iter([4])));
        assert!(subs.contains(&s));
    }

    #[test]
    fn subsets_of_empty() {
        let subs: Vec<_> = AttrSet::EMPTY.subsets().collect();
        assert_eq!(subs, vec![AttrSet::EMPTY]);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", AttrSet::from_iter([0, 2])), "{0,2}");
    }
}
