//! Canonical query signatures: cache keys for per-shape planning artifacts.
//!
//! Two queries with equal signatures have identical hypergraph structure
//! over identical attribute indices — same attribute count, same edges in
//! the same order, same per-edge attribute layout. Relation and attribute
//! *names* are ignored (they are diagnostics only). Every structural
//! planning artifact — classification, join tree, attribute forest — is a
//! pure function of the signature, which is what lets a long-lived engine
//! (`aj_core::engine`) plan a query shape once and reuse the artifacts for
//! every later query of the same shape.
//!
//! Queries built through [`crate::QueryBuilder`] intern attributes in order
//! of first use, so two independently-built copies of the same shape get the
//! same indices and therefore the same signature.

use crate::query::{Attr, Query};

/// The structural identity of a [`Query`]: attribute count plus the per-edge
/// attribute layouts, in edge order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QuerySignature {
    n_attrs: usize,
    edges: Vec<Vec<Attr>>,
}

impl QuerySignature {
    /// The signature of a query.
    pub fn of(q: &Query) -> QuerySignature {
        QuerySignature {
            n_attrs: q.n_attrs(),
            edges: q.edges().iter().map(|e| e.attrs.clone()).collect(),
        }
    }

    /// Number of attributes of the signed query.
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// Number of edges of the signed query.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// A stable 64-bit digest of the structure (FNV-1a). Deterministic
    /// across runs and platforms; used to derive per-shape seed streams so
    /// a replayed query reproduces its run bit-for-bit.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.n_attrs as u64);
        eat(self.edges.len() as u64);
        for e in &self.edges {
            eat(e.len() as u64);
            for &a in e {
                eat(a as u64);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryBuilder;

    fn star() -> Query {
        let mut b = QueryBuilder::new();
        b.relation("R1", &["X", "A"]);
        b.relation("R2", &["X", "B"]);
        b.build()
    }

    #[test]
    fn same_shape_same_signature() {
        let q1 = star();
        // Same shape, different names: identical signature.
        let mut b = QueryBuilder::new();
        b.relation("Users", &["uid", "name"]);
        b.relation("Orders", &["uid", "item"]);
        let q2 = b.build();
        assert_eq!(QuerySignature::of(&q1), QuerySignature::of(&q2));
        assert_eq!(
            QuerySignature::of(&q1).fingerprint(),
            QuerySignature::of(&q2).fingerprint()
        );
    }

    #[test]
    fn different_shapes_differ() {
        let star_sig = QuerySignature::of(&star());
        let mut b = QueryBuilder::new();
        b.relation("R1", &["A", "B"]);
        b.relation("R2", &["B", "C"]);
        let line_sig = QuerySignature::of(&b.build());
        assert_ne!(star_sig, line_sig);
        assert_ne!(star_sig.fingerprint(), line_sig.fingerprint());
    }

    #[test]
    fn layout_order_matters() {
        // R(A,B) and R(B,A) are different layouts (tuple columns differ).
        let mut b = QueryBuilder::new();
        b.relation("R", &["A", "B"]);
        let ab = QuerySignature::of(&b.build());
        let mut b = QueryBuilder::new();
        b.relation("R", &["B", "A"]);
        let ba = QuerySignature::of(&b.build());
        assert_eq!(ab, ba, "builder interns by first use: both are [0, 1]");
        // But an explicitly re-ordered layout differs.
        let mut b = QueryBuilder::new();
        b.relation("S", &["A"]);
        b.relation("R", &["B", "A"]);
        let q = b.build();
        assert_eq!(q.edge(1).attrs, vec![1, 0]);
        assert_ne!(ab, QuerySignature::of(&q));
    }

    #[test]
    fn repeated_attribute_sets_are_canonical() {
        // Two edges over identical attrs are structurally distinct from one
        // edge (the twin constrains the join) and from the reduced query.
        let one = {
            let mut b = QueryBuilder::new();
            b.relation("R1", &["A", "B"]);
            QuerySignature::of(&b.build())
        };
        let build_twins = |n1: &str, n2: &str| {
            let mut b = QueryBuilder::new();
            b.relation(n1, &["A", "B"]);
            b.relation(n2, &["A", "B"]);
            b.build()
        };
        let twins = build_twins("R1", "R2");
        let sig = QuerySignature::of(&twins);
        assert_ne!(sig, one);
        assert_ne!(sig.fingerprint(), one.fingerprint());
        // Naming / listing the twins the other way round is the same
        // structure: identical signature, identical fingerprint — so every
        // per-shape artifact (join tree, seed stream) is shared, and the
        // delta cache keys tree edges by index, never by attribute set.
        let swapped = QuerySignature::of(&build_twins("R2", "R1"));
        assert_eq!(sig, swapped);
        assert_eq!(sig.fingerprint(), swapped.fingerprint());
        // A reversed *layout* on the twin is a different structure (the
        // twin's tuple columns transpose).
        let mut b = QueryBuilder::new();
        b.relation("R1", &["A", "B"]);
        b.relation("R2", &["B", "A"]);
        let reversed = QuerySignature::of(&b.build());
        assert_ne!(sig, reversed);
        assert_ne!(sig.fingerprint(), reversed.fingerprint());
    }

    #[test]
    fn accessors() {
        let sig = QuerySignature::of(&star());
        assert_eq!(sig.n_attrs(), 3);
        assert_eq!(sig.n_edges(), 2);
    }
}
