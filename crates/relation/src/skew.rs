//! Skew profiles: compact, globally-shared summaries of heavy hitters.
//!
//! Hash routing balances load only when no single join-key value carries a
//! constant fraction of a relation — exactly the assumption Zipf-like real
//! workloads violate. A [`SkewProfile`] is the small artifact a one-pass
//! distributed detection produces (see `aj_mpc::skew::detect_heavy_hitters`):
//! the approximate frequencies of the top-k keys of one relation side, plus
//! the exact total. Being small (`O(k)` entries), it can be broadcast to
//! every server for the cost of one control round and then consulted *for
//! free* during routing — every server derives the identical heavy-key
//! directives from the identical profile.
//!
//! [`JoinSkew`] pairs the two sides of a binary join; [`grid_split`] and
//! [`target_cell_load`] are the pure placement math shared by the hybrid
//! router (`aj_core::binary::hybrid_hash_join`) and the planner's cost
//! estimate, so the estimate prices exactly the routing that will run.
//!
//! ```
//! use aj_relation::skew::{JoinSkew, SkewProfile};
//! use aj_relation::Tuple;
//!
//! // A profile over 1-ary join keys: key 7 appears 900 times out of 1000.
//! let profile = SkewProfile::from_counts(
//!     1,
//!     1000,
//!     vec![(Tuple::from([7u64]), 900), (Tuple::from([3u64]), 40)],
//! );
//! assert_eq!(profile.count_of(&[7]), Some(900));
//! assert!(profile.is_heavy(&[7]) && !profile.is_heavy(&[99]));
//! assert_eq!(profile.max_count(), 900);
//!
//! // Keep only keys above a server's fair share on p = 10 servers.
//! let significant = profile.filtered(1000 / 10);
//! assert_eq!(significant.len(), 1);
//!
//! let join = JoinSkew {
//!     left: significant.clone(),
//!     right: SkewProfile::empty(1),
//! };
//! assert!(join.is_skewed());
//! ```

use crate::tuple::{Tuple, Value};

/// Approximate heavy-hitter frequencies of one relation projected onto a
/// join key, plus the exact total row count.
///
/// Entries are kept sorted by key, so membership and count lookups are
/// `O(log k)` binary searches probing with a bare value slice. Counts coming
/// out of the distributed detection are *lower bounds* on the true global
/// frequencies (each server reports only its local top-k); the exact
/// [`SkewProfile::total`] makes the bounds usable for thresholding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkewProfile {
    key_arity: usize,
    total: u64,
    /// `(key, count)` sorted by key.
    heavy: Vec<(Tuple, u64)>,
}

impl SkewProfile {
    /// A profile with no heavy keys (total 0) over keys of the given arity.
    pub fn empty(key_arity: usize) -> Self {
        SkewProfile {
            key_arity,
            total: 0,
            heavy: Vec::new(),
        }
    }

    /// Build a profile from `(key, count)` candidates and the exact total.
    ///
    /// # Panics
    /// Panics if any key's arity differs from `key_arity` or a key repeats.
    pub fn from_counts(key_arity: usize, total: u64, mut counts: Vec<(Tuple, u64)>) -> Self {
        for (k, _) in &counts {
            assert_eq!(k.arity(), key_arity, "profile key arity mismatch");
        }
        counts.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        for w in counts.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate key in skew profile");
        }
        SkewProfile {
            key_arity,
            total,
            heavy: counts,
        }
    }

    /// Arity of the profiled join key.
    pub fn key_arity(&self) -> usize {
        self.key_arity
    }

    /// Exact total number of rows the profile summarizes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of heavy-key entries.
    pub fn len(&self) -> usize {
        self.heavy.len()
    }

    /// Does the profile carry no heavy keys?
    pub fn is_empty(&self) -> bool {
        self.heavy.is_empty()
    }

    /// The `(key, count)` entries, sorted by key.
    pub fn entries(&self) -> &[(Tuple, u64)] {
        &self.heavy
    }

    /// The recorded count of `key`, if it is a heavy hitter.
    pub fn count_of(&self, key: &[Value]) -> Option<u64> {
        self.heavy
            .binary_search_by(|(k, _)| k.values().cmp(key))
            .ok()
            .map(|i| self.heavy[i].1)
    }

    /// Is `key` one of the recorded heavy hitters?
    pub fn is_heavy(&self, key: &[Value]) -> bool {
        self.count_of(key).is_some()
    }

    /// The largest recorded frequency (0 for an empty profile).
    pub fn max_count(&self) -> u64 {
        self.heavy.iter().map(|&(_, c)| c).max().unwrap_or(0)
    }

    /// Fold a batch of **signed** per-key count changes into the profile
    /// (incremental maintenance under live updates; see `aj_core::delta`).
    ///
    /// * [`SkewProfile::total`] moves by the net signed sum (floored at 0);
    /// * tracked keys have their counts adjusted, and are dropped when the
    ///   adjusted count reaches 0;
    /// * an untracked key with a positive net change enters the table with
    ///   that change as its count — a *lower bound* on its true frequency,
    ///   exactly like the counts the one-pass detection reports. This is how
    ///   a key can cross the heavy-hitter threshold mid-stream: enough
    ///   inserts accumulate a bound that clears [`SkewProfile::filtered`]'s
    ///   cut without any re-detection pass.
    ///
    /// Deletions of untracked keys cannot go below the (unknown) true count,
    /// so they are simply not tracked — the profile stays a table of lower
    /// bounds throughout.
    ///
    /// # Panics
    /// Panics if a changed key's arity differs from the profile's.
    pub fn apply_delta(&mut self, changes: &[(Tuple, i64)]) {
        let mut net: i64 = 0;
        for (key, w) in changes {
            assert_eq!(key.arity(), self.key_arity, "profile key arity mismatch");
            net = net.saturating_add(*w);
            match self
                .heavy
                .binary_search_by(|(k, _)| k.values().cmp(key.values()))
            {
                Ok(i) => {
                    let c = self.heavy[i].1 as i64 + w;
                    if c <= 0 {
                        self.heavy.remove(i);
                    } else {
                        self.heavy[i].1 = c as u64;
                    }
                }
                Err(i) if *w > 0 => {
                    self.heavy.insert(i, (key.clone(), *w as u64));
                }
                Err(_) => {} // deleting below an untracked lower bound: no-op
            }
        }
        self.total = if net >= 0 {
            self.total.saturating_add(net as u64)
        } else {
            self.total.saturating_sub(net.unsigned_abs())
        };
    }

    /// The profile restricted to keys with `count >= threshold` (the entries
    /// a router should actually special-case). Total is unchanged.
    pub fn filtered(&self, threshold: u64) -> SkewProfile {
        SkewProfile {
            key_arity: self.key_arity,
            total: self.total,
            heavy: self
                .heavy
                .iter()
                .filter(|&&(_, c)| c >= threshold)
                .cloned()
                .collect(),
        }
    }
}

/// The two per-side [`SkewProfile`]s of one binary join, over the shared
/// join key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSkew {
    /// Heavy hitters of the left (build) side.
    pub left: SkewProfile,
    /// Heavy hitters of the right (probe) side.
    pub right: SkewProfile,
}

impl JoinSkew {
    /// A skew-free pair of empty profiles over keys of the given arity.
    pub fn empty(key_arity: usize) -> Self {
        JoinSkew {
            left: SkewProfile::empty(key_arity),
            right: SkewProfile::empty(key_arity),
        }
    }

    /// `IN` of the join: the two exact totals combined.
    pub fn input_size(&self) -> u64 {
        self.left.total() + self.right.total()
    }

    /// Does either side record any heavy hitter?
    pub fn is_skewed(&self) -> bool {
        !self.left.is_empty() || !self.right.is_empty()
    }

    /// The union of both sides' heavy keys with the per-side counts (absent
    /// side → 0), sorted by key — the key set the hybrid router
    /// special-cases. Both routing sides derive the identical table from the
    /// identical profiles.
    pub fn merged_keys(&self) -> Vec<(Tuple, u64, u64)> {
        let mut out: Vec<(Tuple, u64, u64)> = Vec::new();
        let (l, r) = (self.left.entries(), self.right.entries());
        let (mut i, mut j) = (0usize, 0usize);
        while i < l.len() || j < r.len() {
            match (l.get(i), r.get(j)) {
                (Some((lk, lc)), Some((rk, rc))) => match lk.cmp(rk) {
                    std::cmp::Ordering::Less => {
                        out.push((lk.clone(), *lc, 0));
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        out.push((rk.clone(), 0, *rc));
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        out.push((lk.clone(), *lc, *rc));
                        i += 1;
                        j += 1;
                    }
                },
                (Some((lk, lc)), None) => {
                    out.push((lk.clone(), *lc, 0));
                    i += 1;
                }
                (None, Some((rk, rc))) => {
                    out.push((rk.clone(), 0, *rc));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        out
    }

    /// Both profiles restricted to keys at or above their side's fair share
    /// `total_side / p` — the keys that can overload a server all by
    /// themselves on a `p`-server cluster.
    pub fn significant(&self, p: usize) -> JoinSkew {
        let tau = |total: u64| (total / p as u64).max(2);
        JoinSkew {
            left: self.left.filtered(tau(self.left.total())),
            right: self.right.filtered(tau(self.right.total())),
        }
    }
}

/// The hybrid router's per-cell load target for a join with the given heavy
/// keys: `L = max(1, ⌈IN/2p⌉, ⌈√(OUT_heavy/p)⌉)` where `OUT_heavy = Σ_k a·b`
/// is the output the heavy keys alone produce. Mirrors the paper's binary
/// target load with the profile's approximate degrees standing in for the
/// exact ones; the `IN/2p` (rather than `IN/p`) floor keeps each cell's
/// **two-sided** total `⌈a/r⌉ + ⌈b/c⌉ ≤ 2L` within one server's fair input
/// share, so a grid cell never re-creates the hot spot it was built to
/// split.
pub fn target_cell_load(skew: &JoinSkew, p: usize) -> u64 {
    let out_heavy: u64 = skew
        .merged_keys()
        .iter()
        .map(|&(_, a, b)| a.saturating_mul(b))
        .sum();
    let lin = skew.input_size().div_ceil(2 * p as u64);
    let lout = ((out_heavy as f64 / p as f64).sqrt()).ceil() as u64;
    lin.max(lout).max(1)
}

/// Grid dimensions for one heavy key with (approximate) per-side counts
/// `(a, b)` at cell-load target `load`: the left side is sliced into
/// `⌈a/load⌉` rows, the right into `⌈b/load⌉` columns, so each of the
/// `rows × cols` cells receives at most `2·load` rows of this key
/// (`a/rows + b/cols ≤ 2·load`). A count of 0 (key unseen on that side)
/// still gets one slice.
pub fn grid_split(a: u64, b: u64, load: u64) -> (u64, u64) {
    let load = load.max(1);
    (a.div_ceil(load).max(1), b.div_ceil(load).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: u64) -> Tuple {
        Tuple::from([v])
    }

    #[test]
    fn lookup_and_filter() {
        let p = SkewProfile::from_counts(1, 100, vec![(key(5), 60), (key(2), 10)]);
        assert_eq!(p.count_of(&[5]), Some(60));
        assert_eq!(p.count_of(&[2]), Some(10));
        assert_eq!(p.count_of(&[9]), None);
        assert_eq!(p.max_count(), 60);
        let f = p.filtered(20);
        assert_eq!(f.len(), 1);
        assert!(f.is_heavy(&[5]) && !f.is_heavy(&[2]));
        assert_eq!(f.total(), 100);
    }

    #[test]
    fn merged_keys_unions_sides() {
        let l = SkewProfile::from_counts(1, 10, vec![(key(1), 4), (key(3), 6)]);
        let r = SkewProfile::from_counts(1, 20, vec![(key(3), 9), (key(7), 11)]);
        let m = JoinSkew { left: l, right: r }.merged_keys();
        assert_eq!(m, vec![(key(1), 4, 0), (key(3), 6, 9), (key(7), 0, 11)]);
    }

    #[test]
    fn grid_split_slices_to_target() {
        assert_eq!(grid_split(100, 100, 50), (2, 2));
        assert_eq!(grid_split(100, 10, 50), (2, 1));
        assert_eq!(grid_split(0, 7, 50), (1, 1));
        // Per-cell rows stay within 2·load.
        let (r, c) = grid_split(999, 501, 100);
        assert!(999u64.div_ceil(r) + 501u64.div_ceil(c) <= 200);
    }

    #[test]
    fn target_load_tracks_in_and_heavy_out() {
        let l = SkewProfile::from_counts(1, 1000, vec![(key(0), 900)]);
        let r = SkewProfile::from_counts(1, 1000, vec![(key(0), 900)]);
        let js = JoinSkew { left: l, right: r };
        // OUT_heavy = 810_000 on p = 9: √(OUT/p) = 300 > IN/p = 223.
        assert_eq!(target_cell_load(&js, 9), 300);
        // Skew-free: IN/p dominates.
        assert_eq!(target_cell_load(&JoinSkew::empty(1), 9), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        SkewProfile::from_counts(2, 10, vec![(key(1), 5)]);
    }
}
