//! Tuples: fixed-arity rows of `u64` values.

/// A domain value. All attribute domains are modelled as `u64`; instance
/// generators assign disjoint value ranges per attribute where needed.
pub type Value = u64;

/// Widest tuple stored inline (no heap allocation). Join keys are 1–2
/// values and most relation tuples 2–3, so the hot paths never box.
const INLINE: usize = 3;

/// An immutable fixed-arity tuple.
///
/// Tuples are *atomic* in the paper's tuple-based model: algorithms move and
/// copy them whole. Tuples of arity ≤ 3 are stored **inline** (clone = a
/// 32-byte copy, no allocation); wider tuples fall back to a boxed slice.
/// `Eq`/`Ord`/`Hash` are defined on the value sequence alone, so the two
/// representations are indistinguishable — in particular `Hash` matches the
/// std slice hash, which the `Borrow<[Value]>` lookup contract requires.
#[derive(Clone)]
enum Repr {
    Inline(u8, [Value; INLINE]),
    Boxed(Box<[Value]>),
}

/// See the type-level docs on representation; construct with [`Tuple::new`].
#[derive(Clone)]
pub struct Tuple(Repr);

impl Tuple {
    /// Create a tuple from values (anything slice-like: `Vec`, array,
    /// slice, boxed slice).
    #[inline]
    pub fn new(values: impl AsRef<[Value]>) -> Self {
        Tuple::from_slice(values.as_ref())
    }

    /// Create a tuple by copying a value slice.
    #[inline]
    pub fn from_slice(v: &[Value]) -> Self {
        if v.len() <= INLINE {
            let mut vals = [0; INLINE];
            vals[..v.len()].copy_from_slice(v);
            Tuple(Repr::Inline(v.len() as u8, vals))
        } else {
            Tuple(Repr::Boxed(v.into()))
        }
    }

    /// The empty (0-ary) tuple.
    pub fn unit() -> Self {
        Tuple(Repr::Inline(0, [0; INLINE]))
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.values().len()
    }

    /// Value at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        self.values()[i]
    }

    /// Borrow all values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        match &self.0 {
            Repr::Inline(len, vals) => &vals[..*len as usize],
            Repr::Boxed(b) => b,
        }
    }

    /// Project onto the given positions, in the given order.
    #[inline]
    pub fn project(&self, positions: &[usize]) -> Tuple {
        let vals = self.values();
        if positions.len() <= INLINE {
            let mut out = [0; INLINE];
            for (o, &i) in out.iter_mut().zip(positions) {
                *o = vals[i];
            }
            Tuple(Repr::Inline(positions.len() as u8, out))
        } else {
            Tuple(Repr::Boxed(positions.iter().map(|&i| vals[i]).collect()))
        }
    }

    /// Project into a caller-provided scratch buffer (cleared first) instead
    /// of allocating a new tuple. Combined with the `Borrow<[Value]>` impl,
    /// this turns `map.get(&t.project(&pos))` in hot inner loops into the
    /// allocation-free `map.get(scratch.as_slice())` after
    /// `t.project_into(&pos, &mut scratch)`.
    #[inline]
    pub fn project_into(&self, positions: &[usize], out: &mut Vec<Value>) {
        let vals = self.values();
        out.clear();
        out.extend(positions.iter().map(|&i| vals[i]));
    }

    /// Concatenate with another tuple.
    #[inline]
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple::from_concat(self.values(), other.values())
    }

    /// Build a tuple directly from two concatenated value slices — the
    /// output-assembly fast path of the local hash joins (no intermediate
    /// scratch, inline result for combined arity ≤ 3).
    #[inline]
    pub fn from_concat(a: &[Value], b: &[Value]) -> Tuple {
        if a.len() + b.len() <= INLINE {
            let mut vals = [0; INLINE];
            vals[..a.len()].copy_from_slice(a);
            vals[a.len()..a.len() + b.len()].copy_from_slice(b);
            Tuple(Repr::Inline((a.len() + b.len()) as u8, vals))
        } else {
            let mut v = Vec::with_capacity(a.len() + b.len());
            v.extend_from_slice(a);
            v.extend_from_slice(b);
            Tuple(Repr::Boxed(v.into_boxed_slice()))
        }
    }

    /// Concatenation into a caller-provided scratch buffer (cleared first):
    /// the allocation-free form of [`Tuple::concat`] for inner loops that
    /// post-process the concatenation (e.g. reorder columns) before boxing.
    #[inline]
    pub fn concat_into(&self, other: &Tuple, out: &mut Vec<Value>) {
        let a = self.values();
        let b = other.values();
        out.clear();
        out.reserve(a.len() + b.len());
        out.extend_from_slice(a);
        out.extend_from_slice(b);
    }

    /// Append values at the end.
    pub fn extend(&self, extra: &[Value]) -> Tuple {
        Tuple::from_concat(self.values(), extra)
    }
}

// Equality, ordering, and hashing are over the value sequence, so inline and
// boxed representations of the same values are fully interchangeable.

impl PartialEq for Tuple {
    #[inline]
    fn eq(&self, other: &Tuple) -> bool {
        self.values() == other.values()
    }
}

impl Eq for Tuple {}

impl PartialOrd for Tuple {
    #[inline]
    fn partial_cmp(&self, other: &Tuple) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    #[inline]
    fn cmp(&self, other: &Tuple) -> std::cmp::Ordering {
        self.values().cmp(other.values())
    }
}

impl std::hash::Hash for Tuple {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Must match `<[Value] as Hash>::hash` exactly — the
        // `Borrow<[Value]>` contract for slice-probed maps depends on it.
        self.values().hash(state);
    }
}

/// Lets hash maps keyed by `Tuple` answer lookups for a bare value slice
/// (`HashMap::get` takes any `Q` the key type borrows to): `Hash` and `Eq`
/// on `Tuple` delegate to the value slice, so they agree with the `[Value]`
/// impls as the `Borrow` contract requires.
impl std::borrow::Borrow<[Value]> for Tuple {
    #[inline]
    fn borrow(&self) -> &[Value] {
        self.values()
    }
}

impl std::fmt::Debug for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(v: [Value; N]) -> Self {
        Tuple::from_slice(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::from([1, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(1), 2);
        assert_eq!(t.values(), &[1, 2, 3]);
        assert_eq!(Tuple::unit().arity(), 0);
    }

    #[test]
    fn project_reorders() {
        let t = Tuple::from([10, 20, 30]);
        assert_eq!(t.project(&[2, 0]), Tuple::from([30, 10]));
        assert_eq!(t.project(&[]), Tuple::unit());
    }

    #[test]
    fn concat_extend() {
        let a = Tuple::from([1]);
        let b = Tuple::from([2, 3]);
        assert_eq!(a.concat(&b), Tuple::from([1, 2, 3]));
        assert_eq!(a.extend(&[9, 9]), Tuple::from([1, 9, 9]));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Tuple::from([1, 2]) < Tuple::from([1, 3]));
        assert!(Tuple::from([1]) < Tuple::from([1, 0]));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Tuple::from([4, 5])), "(4,5)");
    }

    #[test]
    fn scratch_paths_match_allocating_paths() {
        let t = Tuple::from([10, 20, 30]);
        let u = Tuple::from([7, 8]);
        let mut scratch = Vec::new();
        t.project_into(&[2, 0], &mut scratch);
        assert_eq!(scratch, t.project(&[2, 0]).values());
        t.concat_into(&u, &mut scratch);
        assert_eq!(scratch, t.concat(&u).values());
        // Scratch is cleared between uses, not appended to.
        t.project_into(&[1], &mut scratch);
        assert_eq!(scratch, vec![20]);
    }

    #[test]
    fn hash_lookup_by_borrowed_slice() {
        use crate::fxhash::FxHashMap;
        let mut m: FxHashMap<Tuple, u32> = FxHashMap::default();
        m.insert(Tuple::from([1, 2]), 7);
        assert_eq!(m.get([1u64, 2].as_slice()), Some(&7));
        assert_eq!(m.get([9u64].as_slice()), None);
    }

    #[test]
    fn inline_and_boxed_reprs_are_interchangeable() {
        // Arity 3 is inline, arity 4 boxed; semantics must not differ.
        let small = Tuple::from([1, 2, 3]);
        let big = Tuple::from([1, 2, 3, 4]);
        assert_eq!(small.values(), &[1, 2, 3]);
        assert_eq!(big.values(), &[1, 2, 3, 4]);
        assert!(small < big, "lexicographic prefix ordering");
        // A boxed projection down to inline width equals a fresh inline tuple.
        assert_eq!(big.project(&[0, 1, 2]), small);
        // Hashing matches the slice hash in both representations.
        use crate::fxhash::FxHashMap;
        let mut m: FxHashMap<Tuple, u8> = FxHashMap::default();
        m.insert(big.clone(), 1);
        m.insert(small.clone(), 2);
        assert_eq!(m.get([1u64, 2, 3, 4].as_slice()), Some(&1));
        assert_eq!(m.get([1u64, 2, 3].as_slice()), Some(&2));
        // Concat crossing the inline boundary.
        assert_eq!(small.concat(&big).values(), &[1, 2, 3, 1, 2, 3, 4]);
    }
}
