//! Tuples: fixed-arity rows of `u64` values.

/// A domain value. All attribute domains are modelled as `u64`; instance
/// generators assign disjoint value ranges per attribute where needed.
pub type Value = u64;

/// An immutable fixed-arity tuple.
///
/// Tuples are *atomic* in the paper's tuple-based model: algorithms move and
/// copy them whole. Cloning is a single `memcpy` of the boxed slice.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Create a tuple from values.
    pub fn new(values: impl Into<Box<[Value]>>) -> Self {
        Tuple(values.into())
    }

    /// The empty (0-ary) tuple.
    pub fn unit() -> Self {
        Tuple(Box::from([]))
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Value at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        self.0[i]
    }

    /// Borrow all values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Project onto the given positions, in the given order.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i]).collect())
    }

    /// Concatenate with another tuple.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v.into_boxed_slice())
    }

    /// Append values at the end.
    pub fn extend(&self, extra: &[Value]) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + extra.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(extra);
        Tuple(v.into_boxed_slice())
    }
}

impl std::fmt::Debug for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(v: [Value; N]) -> Self {
        Tuple::new(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::from([1, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(1), 2);
        assert_eq!(t.values(), &[1, 2, 3]);
        assert_eq!(Tuple::unit().arity(), 0);
    }

    #[test]
    fn project_reorders() {
        let t = Tuple::from([10, 20, 30]);
        assert_eq!(t.project(&[2, 0]), Tuple::from([30, 10]));
        assert_eq!(t.project(&[]), Tuple::unit());
    }

    #[test]
    fn concat_extend() {
        let a = Tuple::from([1]);
        let b = Tuple::from([2, 3]);
        assert_eq!(a.concat(&b), Tuple::from([1, 2, 3]));
        assert_eq!(a.extend(&[9, 9]), Tuple::from([1, 9, 9]));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Tuple::from([1, 2]) < Tuple::from([1, 3]));
        assert!(Tuple::from([1]) < Tuple::from([1, 0]));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Tuple::from([4, 5])), "(4,5)");
    }
}
