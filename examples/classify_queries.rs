//! Explore the paper's query taxonomy (Figure 1): classify queries, print
//! attribute forests, minimal paths (Lemma 2), edge covers (Lemma 1) and
//! the plan the library would pick.
//!
//! ```sh
//! cargo run --release --example classify_queries
//! ```

use acyclic_joins::core::planner::plan_for;
use acyclic_joins::instancegen::shapes;
use acyclic_joins::prelude::*;
use acyclic_joins::relation::classify::AttributeForest;
use acyclic_joins::relation::cover::min_edge_cover;
use acyclic_joins::relation::minpath::find_minimal_path3;

fn inspect(q: &Query) {
    println!("query: {q}");
    println!("  class: {}", classify(q));
    println!("  plan:  {:?}", plan_for(q));
    if q.is_acyclic() {
        let cover = min_edge_cover(q);
        let names: Vec<&str> = cover.iter().map(|&e| q.edge(e).name.as_str()).collect();
        println!("  integral edge cover (Lemma 1): {{{}}}", names.join(", "));
    }
    match find_minimal_path3(q) {
        Some(w) => {
            let names: Vec<&str> = w.attrs.iter().map(|&a| q.attr_name(a)).collect();
            println!("  minimal path of length 3 (Lemma 2): {}", names.join("–"));
        }
        None => println!("  minimal path of length 3 (Lemma 2): none"),
    }
    if let Some(forest) = AttributeForest::build(q) {
        println!("  attribute forest:");
        for line in forest.render(q).lines() {
            println!("    {line}");
        }
    }
    println!();
}

fn main() {
    inspect(&shapes::tall_flat_q1());
    inspect(&shapes::hierarchical_q2());
    inspect(&shapes::rh_example_query());
    inspect(&acyclic_joins::instancegen::line_query(3));
    inspect(&shapes::figure5_query());
    inspect(&shapes::triangle_query());
}
