//! Join-aggregate queries over annotated relations (Section 6):
//! COUNT(*) GROUP BY, a MIN-cost aggregation in the tropical semiring, and
//! the linear-load output-size primitive (Corollary 4).
//!
//! Scenario: sensors(S, room) ⋈ readings(S, T) ⋈ calib(T, drift) — count
//! readings per room, and find the minimum total "drift cost" per room.
//!
//! ```sh
//! cargo run --release --example group_by_aggregates
//! ```

use acyclic_joins::core::aggregate::{is_free_connex, join_aggregate, output_size};
use acyclic_joins::core::dist::distribute_db;
use acyclic_joins::prelude::*;
use acyclic_joins::relation::semiring::{AnnRelation, CountRing, MinPlus};

fn main() {
    let mut b = QueryBuilder::new();
    b.relation("sensors", &["sensor", "room"]);
    b.relation("readings", &["sensor", "ts"]);
    b.relation("calib", &["ts", "batch"]);
    let q = b.build();

    let n = 600u64;
    let mut db = acyclic_joins::relation::database_from_rows(
        &q,
        &[
            (0..60u64).map(|s| vec![s, s % 6]).collect(),
            (0..n).map(|i| vec![i % 60, i % 50]).collect(),
            (0..50u64).map(|t| vec![t, t % 4]).collect(),
        ],
    );
    // Set semantics: the counting primitives (Corollary 4) assume
    // deduplicated input.
    for r in &mut db.relations {
        r.dedup();
    }
    let room = q.attr_by_name("room").unwrap();
    let y = vec![room];
    println!("query: {q}");
    println!("free-connex w.r.t. {{room}}: {}", is_free_connex(&q, &y));

    let p = 8;

    // COUNT(*) GROUP BY room.
    let mut cluster = Cluster::new(p);
    let counts = {
        let mut net = cluster.net();
        let ann: Vec<AnnRelation<CountRing>> = db
            .relations
            .iter()
            .map(AnnRelation::from_relation)
            .collect();
        let mut seed = 17;
        join_aggregate::<CountRing>(&mut net, &q, &ann, &y, &mut seed).expect("free-connex")
    };
    println!(
        "\nCOUNT(*) GROUP BY room   (load L = {}):",
        cluster.stats().max_load
    );
    for (t, c) in counts.gather_free() {
        println!("  room {} → {c} joined readings", t.get(0));
    }

    // MIN total drift per room in the tropical semiring: annotate calib rows
    // with a per-batch drift cost; ⊗ = +, ⊕ = min.
    let mut cluster = Cluster::new(p);
    let mins = {
        let mut net = cluster.net();
        let mut ann: Vec<AnnRelation<MinPlus>> = db
            .relations
            .iter()
            .map(AnnRelation::from_relation)
            .collect();
        for (t, w) in &mut ann[2].tuples {
            *w = 10 * (t.get(1) + 1); // drift cost per calibration batch
        }
        let mut seed = 18;
        join_aggregate::<MinPlus>(&mut net, &q, &ann, &y, &mut seed).expect("free-connex")
    };
    println!(
        "\nMIN drift-cost GROUP BY room  (load L = {}):",
        cluster.stats().max_load
    );
    for (t, c) in mins.gather_free() {
        println!("  room {} → min cost {c}", t.get(0));
    }

    // Corollary 4: |Q(R)| with linear load, no enumeration.
    let mut cluster = Cluster::new(p);
    let out = {
        let mut net = cluster.net();
        let mut seed = 19;
        output_size(&mut net, &q, &distribute_db(&db, p), &mut seed)
    };
    println!(
        "\n|Q(R)| = {out}  computed with load L = {} (IN/p = {})",
        cluster.stats().max_load,
        db.input_size() / p
    );
    assert_eq!(out, acyclic_joins::relation::ram::count(&q, &db));
    println!("verified against the RAM oracle ✓");
}
