//! Quickstart: classify a query, run the optimal algorithm for its class on
//! the MPC simulator, and inspect the measured load.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use acyclic_joins::prelude::*;

fn main() {
    // Build the paper's line-3 join R1(A,B) ⋈ R2(B,C) ⋈ R3(C,D).
    let mut b = QueryBuilder::new();
    b.relation("R1", &["A", "B"]);
    b.relation("R2", &["B", "C"]);
    b.relation("R3", &["C", "D"]);
    let q = b.build();

    println!("query:  {q}");
    println!("class:  {}", classify(&q));

    // A small instance with a skewed B value (the case where join order
    // matters in MPC).
    let db = acyclic_joins::relation::database_from_rows(
        &q,
        &[
            (0..400u64).map(|i| vec![i, i % 8]).collect(),
            (0..64u64).map(|i| vec![i % 8, i]).collect(),
            (0..64u64).map(|i| vec![i, 1000 + i]).collect(),
        ],
    );
    println!("IN:     {}", db.input_size());

    // Simulate p = 16 servers; the planner picks Theorem 7 for this class.
    let p = 16;
    let mut cluster = Cluster::new(p);
    let (plan, out) = {
        let mut net = cluster.net();
        let mut seed = 42;
        execute_best(&mut net, &q, &db, &mut seed)
    };
    let stats = cluster.stats();
    println!("plan:   {plan:?}");
    println!("OUT:    {}", out.total_len());
    println!(
        "load L: {} (IN/p = {}, exchanges = {})",
        stats.max_load,
        db.input_size() / p,
        stats.exchanges
    );

    // Verify against the in-memory Yannakakis oracle.
    let (_, expect) = acyclic_joins::relation::ram::join(&q, &db);
    assert_eq!(out.total_len(), expect.len());
    println!("verified against the RAM oracle ✓");
}
