//! A feed-analytics scenario: the chain join
//! `follows(fan, star) ⋈ posts(star, post) ⋈ tags(post, topic)`.
//!
//! Celebrity accounts ("stars" with many fans *and* many posts) make this a
//! many-to-many chain — exactly the line-3 shape whose join order matters in
//! MPC (Section 4.1): materializing `follows ⋈ posts` first costs Ω(OUT/p),
//! while the paper's heavy/light decomposition (Theorem 5 / Theorem 7) stays
//! at `IN/p + √(IN·OUT)/p`.
//!
//! ```sh
//! cargo run --release --example retail_chain
//! ```

use acyclic_joins::core::dist::distribute_db;
use acyclic_joins::core::{acyclic, bounds, yannakakis};
use acyclic_joins::prelude::*;

/// `n` fans and posts; each star has `fanout` fans and `fanout` posts, so
/// OUT ≈ n·fanout.
fn make_instance(n: u64, fanout: u64) -> (Query, Database) {
    let mut b = QueryBuilder::new();
    b.relation("follows", &["fan", "star"]);
    b.relation("posts", &["star", "post"]);
    b.relation("tags", &["post", "topic"]);
    let q = b.build();
    let stars = (n / fanout).max(1);
    let db = acyclic_joins::relation::database_from_rows(
        &q,
        &[
            (0..n).map(|i| vec![i, i % stars]).collect(),
            (0..n).map(|i| vec![i % stars, i]).collect(),
            (0..n).map(|i| vec![i, 9_000_000 + i % 64]).collect(),
        ],
    );
    (q, db)
}

fn main() {
    let p = 16;
    println!("follows ⋈ posts ⋈ tags on p = {p} simulated servers\n");
    println!(
        "{:>7} {:>7} {:>9} {:>17} {:>17} {:>8} {:>11}",
        "fanout", "IN", "OUT", "L yan (bad order)", "L yan (good ord)", "L thm7", "thm7 bound"
    );
    for fanout in [4u64, 16, 64] {
        let (q, db) = make_instance(2048, fanout);
        let in_size = db.input_size() as u64;
        let out = acyclic_joins::relation::ram::count(&q, &db);

        let run_yan = |order: Vec<usize>| {
            let mut cluster = Cluster::new(p);
            let cnt = {
                let mut net = cluster.net();
                let mut seed = 5;
                yannakakis::yannakakis(&mut net, &q, distribute_db(&db, p), Some(order), &mut seed)
                    .total_len()
            };
            assert_eq!(cnt as u64, out);
            cluster.stats().max_load
        };
        let l_bad = run_yan(vec![0, 1, 2]); // (follows ⋈ posts) ⋈ tags
        let l_good = run_yan(vec![2, 1, 0]); // follows ⋈ (posts ⋈ tags)

        let mut cluster = Cluster::new(p);
        let cnt = {
            let mut net = cluster.net();
            let mut seed = 5;
            acyclic::solve(&mut net, &q, distribute_db(&db, p), &mut seed).total_len()
        };
        assert_eq!(cnt as u64, out);
        let l_ours = cluster.stats().max_load;

        println!(
            "{:>7} {:>7} {:>9} {:>17} {:>17} {:>8} {:>11.0}",
            fanout,
            in_size,
            out,
            l_bad,
            l_good,
            l_ours,
            bounds::acyclic_bound(in_size, out, p)
        );
    }
    println!("\nThe bad order pays for the OUT-sized `follows ⋈ posts` intermediate; the");
    println!("Theorem-7 algorithm needs no order hint — its heavy/light decomposition");
    println!("rebuilds the good plan per star automatically (and handles mixed cases");
    println!("where no single global order works — see `repro fig3`).");
}
