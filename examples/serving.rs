//! Serving: a long-lived [`QueryEngine`] answering a stream of queries on
//! one cluster — plan caching, cost-based planning, and per-query load
//! attribution via stats epochs.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use acyclic_joins::prelude::*;

fn main() {
    // One engine, one cluster of 8 simulated servers, many queries.
    let mut engine = QueryEngine::new(8);

    // Request 1: a star join (r-hierarchical → Theorem 3).
    let mut b = QueryBuilder::new();
    b.relation("Orders", &["cust", "item"]);
    b.relation("Visits", &["cust", "store"]);
    let star = b.build();
    let star_db = acyclic_joins::relation::database_from_rows(
        &star,
        &[
            (0..240u64).map(|i| vec![i % 40, 1000 + i]).collect(),
            (0..120u64).map(|i| vec![i % 40, 2000 + i % 7]).collect(),
        ],
    );

    // Request 2: a line-3 join whose OUT is far below IN — the cost-based
    // planner detects this with the Corollary-4 counting pass and switches
    // to Yannakakis, which class-only dispatch cannot see.
    let sparse = acyclic_joins::instancegen::fig3::sparse_small_out(240, 0);
    let (line, line_db) = (sparse.query, sparse.db);

    for (label, q, db) in [
        ("star", &star, &star_db),
        ("line3", &line, &line_db),
        ("star again", &star, &star_db), // plan-cache hit: bit-identical run
    ] {
        let r = engine.run(q, db);
        println!(
            "{label:>10}: class={} plan={} IN={} OUT={} cache_hit={} \
             L(plan)={} L(exec)={} rows={}",
            r.class,
            r.plan,
            r.in_size,
            r.out_size.map_or("-".into(), |o| o.to_string()),
            r.cache_hit,
            r.planning.max_load,
            r.execution.max_load,
            r.output.total_len(),
        );
    }

    // The per-query epochs reconcile with the cumulative cluster stats.
    let s = engine.stats();
    println!(
        "engine: served={} shapes_cached={} cache_hits={} | global {}",
        engine.served(),
        engine.cache_len(),
        engine.cache_hits(),
        s.report(),
    );
}
