//! Triangle counting in a social graph (Section 7): the simplest *cyclic*
//! join, for which the paper proves the first output-sensitive lower bound
//! and shows cyclic joins are inherently harder than acyclic ones.
//!
//! ```sh
//! cargo run --release --example social_triangles
//! ```

use acyclic_joins::core::triangle;
use acyclic_joins::instancegen::fig6;
use acyclic_joins::prelude::*;

fn main() {
    let p = 27;
    let n = 300u64;
    println!("triangle join R1(B,C) ⋈ R2(A,C) ⋈ R3(A,B) on p = {p} servers\n");
    println!(
        "{:>8} {:>8} {:>10} {:>14} {:>14} {:>16}",
        "OUT", "IN", "L measured", "IN/p^(2/3)", "Thm11 lower", "acyclic-equiv"
    );
    for tau in [1u64, 4, 16] {
        let inst = fig6::generate(n, n * tau, 2024 + tau);
        let in_size = inst.db.input_size() as u64;

        let mut cluster = Cluster::new(p);
        let found = {
            let mut net = cluster.net();
            triangle::solve(&mut net, &inst.query, &inst.db, 7).total_len()
        };
        assert_eq!(found as u64, inst.out, "triangle count mismatch");

        println!(
            "{:>8} {:>8} {:>10} {:>14.0} {:>14.0} {:>16.0}",
            inst.out,
            in_size,
            cluster.stats().max_load,
            triangle::worst_case_load(in_size, p),
            triangle::lower_bound(in_size, inst.out, p),
            triangle::acyclic_comparison_bound(in_size, inst.out, p),
        );
    }
    println!("\nThe HyperCube load is flat in OUT — worst-case optimal, and by Theorem 11");
    println!("also output-optimal once OUT ≥ IN·p^(1/3). For smaller OUT the acyclic-");
    println!("equivalent bound is lower: triangles are provably harder than acyclic joins.");
}
