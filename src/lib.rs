//! # acyclic-joins
//!
//! A Rust reproduction of **Hu & Yi, "Instance and Output Optimal Parallel
//! Algorithms for Acyclic Joins" (PODS 2019)**: instance-optimal and
//! output-optimal join algorithms in the MPC (massively parallel
//! computation) model, together with the MPC cost simulator, the Section-2
//! primitives, hard-instance generators and the experiment harness that
//! regenerates every table and figure of the paper.
//!
//! ## Quick start
//!
//! ```
//! use acyclic_joins::prelude::*;
//!
//! // R1(A,B) ⋈ R2(B,C) ⋈ R3(C,D): the paper's line-3 join.
//! let q = acyclic_joins::instancegen::line_query(3);
//! let db = acyclic_joins::relation::database_from_rows(
//!     &q,
//!     &[
//!         vec![vec![1, 10], vec![2, 10]],
//!         vec![vec![10, 20]],
//!         vec![vec![20, 30]],
//!     ],
//! );
//! // Run the best algorithm for the query's class on 4 simulated servers.
//! let mut cluster = Cluster::new(4);
//! let (plan, out) = {
//!     let mut net = cluster.net();
//!     let mut seed = 42;
//!     execute_best(&mut net, &q, &db, &mut seed)
//! };
//! assert_eq!(plan, Plan::OutputOptimal); // line-3 is acyclic, not r-hierarchical
//! assert_eq!(out.total_len(), 2);
//! println!("load L = {}", cluster.stats().max_load);
//! ```
//!
//! ## Crate map
//!
//! * [`mpc`] — the load-measuring MPC simulator;
//! * [`relation`] — queries, classification (Fig. 1), the RAM oracle;
//! * [`primitives`] — Section-2 MPC primitives;
//! * [`core`] — the paper's algorithms (Theorems 3, 5, 7, 9; baselines) and
//!   the [`core::engine::QueryEngine`] serving layer (plan cache,
//!   cost-based planning, per-query stats epochs);
//! * [`instancegen`] — the hard instances of Figures 3, 4 and 6;
//! * [`obs`] — deterministic structured tracing: bounded event traces
//!   (bit-identical across backends), Chrome trace-event and flat-metrics
//!   exporters, and the data behind `QueryEngine::explain`.

pub use aj_core as core;
pub use aj_instancegen as instancegen;
pub use aj_mpc as mpc;
pub use aj_obs as obs;
pub use aj_primitives as primitives;
pub use aj_relation as relation;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use aj_core::{
        execute_best, execute_plan, DistDatabase, DistRelation, EngineConfig, MaintenanceChoice,
        MaterializedView, Plan, QueryEngine, QueryOutcome, UpdateOutcome, ViewId,
    };
    pub use aj_mpc::{
        BlockPartitioned, Cluster, DeltaBlock, DeltaOutbox, EpochStats, Net, Partitioned, RowOutbox,
    };
    pub use aj_obs::{ObsConfig, Trace};
    pub use aj_primitives::{FxHashMap, FxHashSet};
    pub use aj_relation::{
        classify::classify, Database, JoinClass, JoinSkew, Query, QueryBuilder, QuerySignature,
        Relation, SkewProfile, Tuple, TupleBlock, UpdateBatch,
    };
}
