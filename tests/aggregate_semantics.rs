//! Join-aggregate correctness across semirings: the Theorem-9 pipeline must
//! agree with a naive reference evaluator on randomized free-connex queries.

use std::collections::HashMap;

use acyclic_joins::instancegen::random;
use acyclic_joins::prelude::*;
use acyclic_joins::relation::ram;
use acyclic_joins::relation::semiring::{AnnRelation, BoolRing, CountRing, MinPlus, Semiring};
use aj_core::aggregate::{is_free_connex, join_aggregate};
use proptest::prelude::*;

/// Naive reference: enumerate the full join, then fold annotations.
fn reference<S: Semiring>(q: &Query, db: &[AnnRelation<S>], y: &[usize]) -> Vec<(Tuple, S::T)>
where
    S::T: std::fmt::Debug + PartialEq,
{
    let plain = Database::new(
        db.iter()
            .map(|r| {
                Relation::new(
                    r.attrs.clone(),
                    r.tuples.iter().map(|(t, _)| t.clone()).collect(),
                )
            })
            .collect(),
    );
    let (schema, results) = ram::join(q, &plain);
    let ypos: Vec<usize> = y
        .iter()
        .map(|a| schema.iter().position(|x| x == a).unwrap())
        .collect();
    let mut agg: HashMap<Tuple, S::T> = HashMap::new();
    for t in results {
        // ⊗ over the participating tuples of each relation.
        let mut w = S::one();
        for r in db {
            let pos: Vec<usize> = r
                .attrs
                .iter()
                .map(|a| schema.iter().position(|x| x == a).unwrap())
                .collect();
            let key = t.project(&pos);
            let (_, wt) = r
                .tuples
                .iter()
                .find(|(tt, _)| *tt == key)
                .expect("joined tuple exists in its relation");
            w = S::mul(w, *wt);
        }
        let yk = t.project(&ypos);
        match agg.remove(&yk) {
            Some(old) => {
                agg.insert(yk, S::add(old, w));
            }
            None => {
                agg.insert(yk, w);
            }
        }
    }
    let mut v: Vec<(Tuple, S::T)> = agg.into_iter().collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

fn annotated<S: Semiring>(
    db: &Database,
    seed: u64,
    mk: impl Fn(u64) -> S::T,
) -> Vec<AnnRelation<S>> {
    db.relations
        .iter()
        .enumerate()
        .map(|(e, r)| {
            AnnRelation::new(
                r.attrs.clone(),
                r.tuples
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (t.clone(), mk(seed ^ (e as u64) << 20 ^ i as u64)))
                    .collect(),
            )
        })
        .collect()
}

/// A free-connex output set for `q`: the attributes of one edge plus any
/// attrs whose addition keeps (V, E ∪ {y}) acyclic.
fn free_connex_y(q: &Query, seed: u64) -> Vec<usize> {
    let base = (seed as usize) % q.n_edges();
    let mut y: Vec<usize> = q.edge(base).attrs.clone();
    for a in 0..q.n_attrs() {
        if !y.contains(&a) {
            let mut cand = y.clone();
            cand.push(a);
            if is_free_connex(q, &cand) && seed.wrapping_mul(a as u64 + 3).is_multiple_of(3) {
                y = cand;
            }
        }
    }
    y.sort_unstable();
    y
}

fn check<S: Semiring>(q: &Query, db: &Database, y: &[usize], seed: u64, mk: impl Fn(u64) -> S::T)
where
    S::T: std::fmt::Debug + PartialEq + aj_mpc::Wire,
{
    let ann = annotated::<S>(db, seed, mk);
    let want = reference::<S>(q, &ann, y);
    let mut cluster = Cluster::new(4);
    let got = {
        let mut net = cluster.net();
        let mut s = seed | 1;
        join_aggregate::<S>(&mut net, q, &ann, y, &mut s).expect("free-connex")
    };
    // Output attribute order may differ; normalize to sorted-y projection.
    let mut sorted_attrs = got.attrs.clone();
    sorted_attrs.sort_unstable();
    assert_eq!(sorted_attrs, y, "output schema mismatch");
    let order: Vec<usize> = y
        .iter()
        .map(|a| got.attrs.iter().position(|x| x == a).unwrap())
        .collect();
    let mut got: Vec<(Tuple, S::T)> = got
        .gather_free()
        .into_iter()
        .map(|(t, w)| (t.project(&order), w))
        .collect();
    got.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(got, want, "query {q}, y {y:?}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn count_ring_matches_reference(seed in 0u64..3000, m in 2usize..4) {
        let q = random::random_acyclic_query(m, seed);
        let db = random::random_instance(&q, 18, 4, seed ^ 0x9e37);
        let y = free_connex_y(&q, seed);
        prop_assume!(is_free_connex(&q, &y));
        check::<CountRing>(&q, &db, &y, seed, |s| 1 + s % 5);
    }

    #[test]
    fn bool_ring_matches_reference(seed in 0u64..3000, m in 2usize..4) {
        let q = random::random_acyclic_query(m, seed);
        let db = random::random_instance(&q, 18, 4, seed ^ 0x1234);
        let y = free_connex_y(&q, seed);
        prop_assume!(is_free_connex(&q, &y));
        check::<BoolRing>(&q, &db, &y, seed, |s| s % 3 != 0);
    }

    #[test]
    fn min_plus_matches_reference(seed in 0u64..3000, m in 2usize..4) {
        let q = random::random_acyclic_query(m, seed);
        let db = random::random_instance(&q, 18, 4, seed ^ 0x4321);
        let y = free_connex_y(&q, seed);
        prop_assume!(is_free_connex(&q, &y));
        check::<MinPlus>(&q, &db, &y, seed, |s| s % 100);
    }

    /// The scalar case (y = ∅) equals the oracle count under CountRing.
    #[test]
    fn scalar_count_matches_oracle(seed in 0u64..3000, m in 2usize..5) {
        let q = random::random_acyclic_query(m, seed);
        let db = random::random_instance(&q, 20, 4, seed ^ 0x8888);
        let want = ram::count(&q, &db);
        let ann: Vec<AnnRelation<CountRing>> =
            db.relations.iter().map(AnnRelation::from_relation).collect();
        let mut cluster = Cluster::new(4);
        let got = {
            let mut net = cluster.net();
            let mut s = seed | 1;
            join_aggregate::<CountRing>(&mut net, &q, &ann, &[], &mut s).unwrap()
        };
        let all = got.gather_free();
        let scalar = all.first().map(|&(_, w)| w).unwrap_or(0);
        prop_assert_eq!(scalar, want);
    }
}
