//! Cross-backend conformance oracle: every query shape, the skew path, and
//! registered-view update streams must produce **bit-identical** outputs and
//! `Stats` on every execution backend — `SeqExecutor`, `ParExecutor`, and
//! `NetExecutor` over every transport (in-process channels, Unix-domain
//! sockets, and an adversarial reordering wrapper).
//!
//! This is the differential harness that makes the message-passing backend
//! trustworthy: the sequential executor is the reference semantics, and any
//! divergence — one tuple, one load unit, one epoch — fails loudly with the
//! backend's label. Because the wire path serializes every payload through
//! frames, agreement here also certifies the `Wire` codecs for every type
//! the algorithms exchange.

use std::sync::Arc;

use acyclic_joins::core::engine::QueryEngine;
use acyclic_joins::instancegen::{fig3, fig6, line_query, random, shapes, updates};
use acyclic_joins::mpc::{ChanTransport, Cluster, ParExecutor, ShuffleTransport, Stats};
use acyclic_joins::prelude::*;
use acyclic_joins::relation::delta::CountedSnapshot;
use acyclic_joins::relation::ram;

const P: usize = 4;

/// A named recipe for building a fresh cluster on one backend.
type Backend = (&'static str, Box<dyn Fn() -> Cluster>);

/// Every backend under test, by label. The shuffle backend wraps the
/// channel transport in [`ShuffleTransport`], which delivers frames in a
/// seeded adversarial order — per-sender FIFO is all a receiver may rely on.
fn backends() -> Vec<Backend> {
    let mut v: Vec<Backend> = vec![
        ("seq", Box::new(|| Cluster::new(P))),
        (
            "par",
            Box::new(|| Cluster::with_executor(P, Box::new(ParExecutor::with_threads(4)))),
        ),
        ("net-chan", Box::new(|| Cluster::new_net(P))),
        (
            "net-shuffle",
            Box::new(|| {
                Cluster::new_net_with_transport(
                    P,
                    Arc::new(ShuffleTransport::new(ChanTransport::new(P), 0xc0ff_ee00)),
                )
            }),
        ),
    ];
    #[cfg(unix)]
    v.push((
        "net-uds",
        Box::new(|| Cluster::new_net_with_transport(P, acyclic_joins::mpc::UdsTransport::new(P))),
    ));
    v
}

/// The query shapes the suite drives: every Table-1 class plus both OUT
/// regimes of the line-3 query.
fn cases() -> Vec<(&'static str, Query, Database)> {
    let dedup = |mut db: Database| {
        db.dedup_all();
        db
    };
    let line = line_query(3);
    vec![
        (
            "star3",
            shapes::star_query(3),
            dedup(random::random_instance(&shapes::star_query(3), 40, 10, 11)),
        ),
        (
            "r-hier",
            shapes::rh_example_query(),
            dedup(random::random_instance(
                &shapes::rh_example_query(),
                40,
                8,
                22,
            )),
        ),
        (
            "tall-flat",
            shapes::tall_flat_q1(),
            dedup(random::random_instance(&shapes::tall_flat_q1(), 36, 4, 33)),
        ),
        (
            "line3-out-large",
            line.clone(),
            fig3::one_sided(24, 24 * 8).db,
        ),
        ("line3-out-small", line, fig3::sparse_small_out(48, 3).db),
        (
            "triangle",
            fig6::generate(24, 40, 5).query,
            fig6::generate(24, 40, 5).db,
        ),
    ]
}

/// The RAM-model reference answer.
fn oracle(q: &Query, db: &Database) -> Vec<Tuple> {
    let mut t = if q.is_acyclic() {
        ram::join(q, db).1
    } else {
        ram::naive_join(q, db)
    };
    t.sort_unstable();
    t
}

/// Run `q` on `db` through a full engine on one backend; return the sorted
/// output and the cumulative cluster stats.
fn engine_run(make: &dyn Fn() -> Cluster, q: &Query, db: &Database) -> (Vec<Tuple>, Stats) {
    let mut engine = QueryEngine::with_cluster(make(), Default::default());
    let outcome = engine.run(q, db);
    let mut tuples = outcome.output.gather_free().tuples;
    tuples.sort_unstable();
    (tuples, engine.stats().clone())
}

/// The acceptance differential: identical outputs, identical `Stats` (max
/// load, per-server peaks, message totals, exchange counts) on every shape
/// across every backend — and correct against the RAM oracle.
#[test]
fn every_shape_is_bit_identical_across_backends() {
    for (label, q, db) in cases() {
        let mut reference: Option<(Vec<Tuple>, Stats)> = None;
        for (backend, make) in backends() {
            let (tuples, stats) = engine_run(make.as_ref(), &q, &db);
            match &reference {
                None => {
                    assert_eq!(tuples, oracle(&q, &db), "{label}/{backend}: wrong answer");
                    reference = Some((tuples, stats));
                }
                Some((ref_tuples, ref_stats)) => {
                    assert_eq!(&tuples, ref_tuples, "{label}/{backend}: outputs differ");
                    assert_eq!(&stats, ref_stats, "{label}/{backend}: stats differ");
                }
            }
        }
    }
}

/// The skew path: a binary join whose join key is dominated by heavy
/// hitters routes through heavy-hitter detection and hybrid routing; the
/// detection rounds and the skew routing must replay identically on the
/// wire backends.
#[test]
fn skewed_workloads_are_bit_identical_across_backends() {
    let mut b = acyclic_joins::relation::QueryBuilder::new();
    b.relation("R1", &["A", "B"]);
    b.relation("R2", &["B", "C"]);
    let q = b.build();
    // 70% of both sides on one key: a genuinely skewed workload.
    let r1: Vec<Vec<u64>> = (0..80)
        .map(|i| vec![i, if i < 56 { 7 } else { i % 9 }])
        .collect();
    let r2: Vec<Vec<u64>> = (0..60)
        .map(|i| vec![if i < 42 { 7 } else { i % 9 }, 1000 + i])
        .collect();
    let db = acyclic_joins::relation::database_from_rows(&q, &[r1, r2]);
    let mut reference: Option<(Vec<Tuple>, Stats)> = None;
    for (backend, make) in backends() {
        let (tuples, stats) = engine_run(make.as_ref(), &q, &db);
        match &reference {
            None => {
                assert_eq!(tuples, oracle(&q, &db), "skew/{backend}: wrong answer");
                reference = Some((tuples, stats));
            }
            Some((ref_tuples, ref_stats)) => {
                assert_eq!(&tuples, ref_tuples, "skew/{backend}: outputs differ");
                assert_eq!(&stats, ref_stats, "skew/{backend}: stats differ");
            }
        }
    }
}

/// Incremental maintenance over the wire: register a view, apply a 10-batch
/// update stream, and require the per-batch snapshots, strategies, and
/// maintenance epochs to agree across every backend bit for bit.
#[test]
fn update_streams_are_bit_identical_across_backends() {
    for (label, q, db) in [cases().remove(0), cases().remove(3)] {
        let mut mirror = db.clone();
        mirror.dedup_all();
        let batches = updates::update_stream(&q, &mirror, 10, 0.05, 0.0, 0xfeed);
        let drive = |make: &dyn Fn() -> Cluster| {
            let mut engine = QueryEngine::with_cluster(make(), Default::default());
            let view = engine.register_view(&q, &db);
            let mut trace: Vec<(CountedSnapshot, String, u64)> = vec![(
                engine.view(view).snapshot(),
                "register".to_string(),
                engine.stats().max_load,
            )];
            for batch in &batches {
                let outcome = engine.apply_update(view, batch);
                trace.push((
                    engine.view(view).snapshot(),
                    format!("{}", outcome.strategy),
                    outcome.maintenance.max_load,
                ));
            }
            trace
        };
        let mut reference = None;
        for (backend, make) in backends() {
            let trace = drive(make.as_ref());
            match &reference {
                None => reference = Some(trace),
                Some(ref_trace) => {
                    assert_eq!(&trace, ref_trace, "{label}/{backend}: update trace differs");
                }
            }
        }
    }
}

/// Adversarial delivery order in isolation: the same query on two shuffle
/// seeds and on the plain channel transport — three different physical
/// arrival orders — must yield one logical result and one `Stats`.
#[test]
fn shuffled_delivery_order_never_changes_results() {
    let (label, q, db) = cases().remove(3); // line3, OUT >> IN: heavy traffic
    let mut reference: Option<(Vec<Tuple>, Stats)> = None;
    for seed in [1u64, 0x5eed, u64::MAX] {
        let make = || {
            Cluster::new_net_with_transport(
                P,
                Arc::new(ShuffleTransport::new(ChanTransport::new(P), seed)),
            )
        };
        let (tuples, stats) = engine_run(&make, &q, &db);
        match &reference {
            None => {
                assert_eq!(
                    tuples,
                    oracle(&q, &db),
                    "{label}/shuffle-{seed}: wrong answer"
                );
                reference = Some((tuples, stats));
            }
            Some((ref_tuples, ref_stats)) => {
                assert_eq!(
                    &tuples, ref_tuples,
                    "{label}/shuffle-{seed}: outputs differ"
                );
                assert_eq!(&stats, ref_stats, "{label}/shuffle-{seed}: stats differ");
            }
        }
    }
}
