//! Cross-backend conformance oracle: every query shape, the skew path, and
//! registered-view update streams must produce **bit-identical** outputs and
//! `Stats` on every execution backend — `SeqExecutor`, `ParExecutor`, and
//! `NetExecutor` over every transport (in-process channels, Unix-domain
//! sockets, and an adversarial reordering wrapper).
//!
//! This is the differential harness that makes the message-passing backend
//! trustworthy: the sequential executor is the reference semantics, and any
//! divergence — one tuple, one load unit, one epoch — fails loudly with the
//! backend's label. Because the wire path serializes every payload through
//! frames, agreement here also certifies the `Wire` codecs for every type
//! the algorithms exchange.
//!
//! Since the observability layer landed, the **logical trace** is a third
//! conformance axis next to outputs and `Stats`: every cell runs with
//! tracing enabled and the logical event streams (exchanges, epoch
//! boundaries, plan/maintenance decisions — everything except the
//! timing-dependent `Transport` events) must be bit-identical across
//! backends, and on lossy backends identical to the fault-free reference.

use std::sync::Arc;

use acyclic_joins::core::engine::QueryEngine;
use acyclic_joins::instancegen::{fig3, fig6, line_query, random, randquery, shapes, updates};
use acyclic_joins::mpc::{
    ChanTransport, Cluster, CrashPoint, FaultPlan, FaultyTransport, LinkPartition, ParExecutor,
    ShuffleTransport, Stats,
};
use acyclic_joins::obs::{Event, ObsConfig};
use acyclic_joins::prelude::*;
use acyclic_joins::relation::delta::CountedSnapshot;
use acyclic_joins::relation::ram;

const P: usize = 4;

/// A named recipe for building a fresh cluster on one backend.
type Backend = (&'static str, Box<dyn Fn() -> Cluster>);

/// Every backend under test, by label. The shuffle backend wraps the
/// channel transport in [`ShuffleTransport`], which delivers frames in a
/// seeded adversarial order — per-sender FIFO is all a receiver may rely on.
fn backends() -> Vec<Backend> {
    let mut v: Vec<Backend> = vec![
        ("seq", Box::new(|| Cluster::new(P))),
        (
            "par",
            Box::new(|| Cluster::with_executor(P, Box::new(ParExecutor::with_threads(4)))),
        ),
        ("net-chan", Box::new(|| Cluster::new_net(P))),
        (
            "net-shuffle",
            Box::new(|| {
                Cluster::new_net_with_transport(
                    P,
                    Arc::new(ShuffleTransport::new(ChanTransport::new(P), 0xc0ff_ee00)),
                )
            }),
        ),
    ];
    #[cfg(unix)]
    v.push((
        "net-uds",
        Box::new(|| Cluster::new_net_with_transport(P, acyclic_joins::mpc::UdsTransport::new(P))),
    ));
    v
}

/// The query shapes the suite drives: every Table-1 class plus both OUT
/// regimes of the line-3 query.
fn cases() -> Vec<(&'static str, Query, Database)> {
    let dedup = |mut db: Database| {
        db.dedup_all();
        db
    };
    let line = line_query(3);
    vec![
        (
            "star3",
            shapes::star_query(3),
            dedup(random::random_instance(&shapes::star_query(3), 40, 10, 11)),
        ),
        (
            "r-hier",
            shapes::rh_example_query(),
            dedup(random::random_instance(
                &shapes::rh_example_query(),
                40,
                8,
                22,
            )),
        ),
        (
            "tall-flat",
            shapes::tall_flat_q1(),
            dedup(random::random_instance(&shapes::tall_flat_q1(), 36, 4, 33)),
        ),
        (
            "line3-out-large",
            line.clone(),
            fig3::one_sided(24, 24 * 8).db,
        ),
        ("line3-out-small", line, fig3::sparse_small_out(48, 3).db),
        (
            "triangle",
            fig6::generate(24, 40, 5).query,
            fig6::generate(24, 40, 5).db,
        ),
        // General cyclic shapes (appended; earlier indices are pinned by
        // the update-stream tests). These route through the GHD/WCOJ
        // pipeline or whole-query HyperCube, whichever the planner prices
        // cheaper — either way the backends must agree bit for bit.
        cyclic_case("cycle4", cycle_query(4), 24, 6, 0x901),
        cyclic_case("cycle5", cycle_query(5), 24, 6, 0x902),
        cyclic_case("k4", clique4_query(), 22, 6, 0x903),
        cyclic_case("grid2x3", grid2x3_query(), 24, 6, 0x904),
    ]
}

/// A `k`-cycle of binary relations `R1(A0,A1), …, Rk(A{k-1},A0)`.
fn cycle_query(k: usize) -> Query {
    let mut b = acyclic_joins::relation::QueryBuilder::new();
    for i in 0..k {
        b.relation(
            &format!("R{}", i + 1),
            &[&format!("A{i}"), &format!("A{}", (i + 1) % k)],
        );
    }
    b.build()
}

/// All six pairs over four vertices: the K4 clique.
fn clique4_query() -> Query {
    let mut b = acyclic_joins::relation::QueryBuilder::new();
    for (i, (x, y)) in [
        ("A", "B"),
        ("A", "C"),
        ("A", "D"),
        ("B", "C"),
        ("B", "D"),
        ("C", "D"),
    ]
    .iter()
    .enumerate()
    {
        b.relation(&format!("E{i}"), &[x, y]);
    }
    b.build()
}

/// The 2×3 grid graph: vertices `V{r}{c}`, one binary relation per
/// horizontal and vertical adjacency (7 edges, two chordless 4-cycles).
fn grid2x3_query() -> Query {
    let mut b = acyclic_joins::relation::QueryBuilder::new();
    let v = |r: usize, c: usize| format!("V{r}{c}");
    let mut i = 0;
    for r in 0..2 {
        for c in 0..2 {
            i += 1;
            b.relation(&format!("H{i}"), &[&v(r, c), &v(r, c + 1)]);
        }
    }
    for c in 0..3 {
        b.relation(&format!("W{c}"), &[&v(0, c), &v(1, c)]);
    }
    b.build()
}

/// A cyclic conformance case with a matched uniform instance (dense enough
/// that the join output is non-empty, so the differential bites).
fn cyclic_case(
    label: &'static str,
    q: Query,
    size: usize,
    domain: u64,
    seed: u64,
) -> (&'static str, Query, Database) {
    let db = randquery::uniform_instance(&q, size, domain, seed);
    (label, q, db)
}

/// The RAM-model reference answer.
fn oracle(q: &Query, db: &Database) -> Vec<Tuple> {
    let mut t = if q.is_acyclic() {
        ram::join(q, db).1
    } else {
        ram::naive_join(q, db)
    };
    t.sort_unstable();
    t
}

/// Run `q` on `db` through a full engine on one backend with tracing on;
/// return the sorted output, the cumulative cluster stats, and the logical
/// event stream (physical `Transport` events excluded — they depend on
/// timing and must *not* be part of the differential).
fn engine_run(
    make: &dyn Fn() -> Cluster,
    q: &Query,
    db: &Database,
) -> (Vec<Tuple>, Stats, Vec<Event>) {
    let mut engine = QueryEngine::with_cluster(make(), Default::default());
    engine.enable_tracing(ObsConfig::default());
    let outcome = engine.run(q, db);
    let mut tuples = outcome.output.gather_free().tuples;
    tuples.sort_unstable();
    let events = engine
        .take_trace()
        .expect("tracing was enabled")
        .logical_events();
    (tuples, engine.stats().clone(), events)
}

/// The acceptance differential: identical outputs, identical `Stats` (max
/// load, per-server peaks, message totals, exchange counts) on every shape
/// across every backend — and correct against the RAM oracle.
#[test]
fn every_shape_is_bit_identical_across_backends() {
    for (label, q, db) in cases() {
        let mut reference: Option<(Vec<Tuple>, Stats, Vec<Event>)> = None;
        for (backend, make) in backends() {
            let (tuples, stats, events) = engine_run(make.as_ref(), &q, &db);
            match &reference {
                None => {
                    assert_eq!(tuples, oracle(&q, &db), "{label}/{backend}: wrong answer");
                    assert!(!events.is_empty(), "{label}/{backend}: empty trace");
                    reference = Some((tuples, stats, events));
                }
                Some((ref_tuples, ref_stats, ref_events)) => {
                    assert_eq!(&tuples, ref_tuples, "{label}/{backend}: outputs differ");
                    assert_eq!(&stats, ref_stats, "{label}/{backend}: stats differ");
                    assert_eq!(&events, ref_events, "{label}/{backend}: traces differ");
                }
            }
        }
    }
}

/// The skew path: a binary join whose join key is dominated by heavy
/// hitters routes through heavy-hitter detection and hybrid routing; the
/// detection rounds and the skew routing must replay identically on the
/// wire backends.
#[test]
fn skewed_workloads_are_bit_identical_across_backends() {
    let mut b = acyclic_joins::relation::QueryBuilder::new();
    b.relation("R1", &["A", "B"]);
    b.relation("R2", &["B", "C"]);
    let q = b.build();
    // 70% of both sides on one key: a genuinely skewed workload.
    let r1: Vec<Vec<u64>> = (0..80)
        .map(|i| vec![i, if i < 56 { 7 } else { i % 9 }])
        .collect();
    let r2: Vec<Vec<u64>> = (0..60)
        .map(|i| vec![if i < 42 { 7 } else { i % 9 }, 1000 + i])
        .collect();
    let db = acyclic_joins::relation::database_from_rows(&q, &[r1, r2]);
    let mut reference: Option<(Vec<Tuple>, Stats, Vec<Event>)> = None;
    for (backend, make) in backends() {
        let (tuples, stats, events) = engine_run(make.as_ref(), &q, &db);
        match &reference {
            None => {
                assert_eq!(tuples, oracle(&q, &db), "skew/{backend}: wrong answer");
                reference = Some((tuples, stats, events));
            }
            Some((ref_tuples, ref_stats, ref_events)) => {
                assert_eq!(&tuples, ref_tuples, "skew/{backend}: outputs differ");
                assert_eq!(&stats, ref_stats, "skew/{backend}: stats differ");
                assert_eq!(&events, ref_events, "skew/{backend}: traces differ");
            }
        }
    }
}

/// Incremental maintenance over the wire: register a view, apply a 10-batch
/// update stream, and require the per-batch snapshots, strategies, and
/// maintenance epochs to agree across every backend bit for bit.
#[test]
fn update_streams_are_bit_identical_across_backends() {
    for (label, q, db) in [cases().remove(0), cases().remove(3)] {
        let mut mirror = db.clone();
        mirror.dedup_all();
        let batches = updates::update_stream(&q, &mirror, 10, 0.05, 0.0, 0xfeed);
        let drive = |make: &dyn Fn() -> Cluster| {
            let mut engine = QueryEngine::with_cluster(make(), Default::default());
            engine.enable_tracing(ObsConfig::default());
            let view = engine.register_view(&q, &db);
            let mut trace: Vec<(CountedSnapshot, String, u64)> = vec![(
                engine.view(view).snapshot(),
                "register".to_string(),
                engine.stats().max_load,
            )];
            for batch in &batches {
                let outcome = engine.apply_update(view, batch);
                trace.push((
                    engine.view(view).snapshot(),
                    format!("{}", outcome.strategy),
                    outcome.maintenance.max_load,
                ));
            }
            let events = engine
                .take_trace()
                .expect("tracing was enabled")
                .logical_events();
            (trace, events)
        };
        let mut reference = None;
        for (backend, make) in backends() {
            let (trace, events) = drive(make.as_ref());
            match &reference {
                None => reference = Some((trace, events)),
                Some((ref_trace, ref_events)) => {
                    assert_eq!(&trace, ref_trace, "{label}/{backend}: update trace differs");
                    assert_eq!(
                        &events, ref_events,
                        "{label}/{backend}: logical event traces differ"
                    );
                }
            }
        }
    }
}

/// The seeded fault plans of the conformance matrix: every injectable
/// network pathology short of a crash (crashes need the recovery supervisor
/// and get their own test below). Per-mille rates; distinct seeds so the
/// plans exercise different frame subsets.
fn fault_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("drop1pct", FaultPlan::dropping(0xfa01, 10)),
        ("drop10pct", FaultPlan::dropping(0xfa02, 100)),
        ("dup5pct", FaultPlan::duplicating(0xfa03, 50)),
        ("delay", FaultPlan::delaying(0xfa04, 150, 3)),
        (
            "partition",
            FaultPlan {
                seed: 0xfa05,
                partition: Some(LinkPartition {
                    a: 0,
                    b: 2,
                    after: 3,
                    len: 10,
                }),
                ..FaultPlan::default()
            },
        ),
        (
            "combined",
            FaultPlan {
                seed: 0xfa06,
                drop_per_mille: 50,
                dup_per_mille: 50,
                delay_per_mille: 50,
                delay_steps: 2,
                partition: Some(LinkPartition {
                    a: 1,
                    b: 3,
                    after: 5,
                    len: 6,
                }),
                crash: None,
            },
        ),
    ]
}

/// Reliable-mode network backends with `plan`'s faults injected underneath:
/// the in-process channel transport always, real unix-domain sockets where
/// available.
fn faulty_backends(plan: FaultPlan, uds: bool) -> Vec<Backend> {
    let mut v: Vec<Backend> = vec![(
        "net-chan-faulty",
        Box::new(move || Cluster::new_net_faulty(P, plan)),
    )];
    #[cfg(unix)]
    if uds {
        v.push((
            "net-uds-faulty",
            Box::new(move || {
                Cluster::new_net_with_transport_reliable(
                    P,
                    Arc::new(FaultyTransport::new(
                        acyclic_joins::mpc::UdsTransport::new(P),
                        plan,
                    )),
                )
            }),
        ));
    }
    #[cfg(not(unix))]
    let _ = uds;
    v
}

/// The fault acceptance differential: every query shape under every fault
/// plan must produce the *same* outputs and the same logical `Stats` as the
/// fault-free sequential reference — the retransmit/ack machinery may cost
/// physical wire bytes but must be invisible to the measured model. The
/// heavier uds (real socket) backend runs on the two harshest plans.
#[test]
fn every_shape_is_bit_identical_under_faults() {
    for (label, q, db) in cases() {
        let (ref_tuples, ref_stats, ref_events) = engine_run(&|| Cluster::new(P), &q, &db);
        assert_eq!(ref_tuples, oracle(&q, &db), "{label}/seq: wrong answer");
        for (plan_label, plan) in fault_plans() {
            let uds = matches!(plan_label, "drop10pct" | "combined");
            for (backend, make) in faulty_backends(plan, uds) {
                let (tuples, stats, events) = engine_run(make.as_ref(), &q, &db);
                assert_eq!(
                    tuples, ref_tuples,
                    "{label}/{backend}/{plan_label}: outputs differ"
                );
                assert_eq!(
                    stats, ref_stats,
                    "{label}/{backend}/{plan_label}: stats differ"
                );
                // The logical event stream is post-dedup by construction
                // (retransmits and duplicate frames surface only as
                // physical Transport events): a lossy run's logical trace
                // must match the fault-free reference bit for bit.
                assert_eq!(
                    events, ref_events,
                    "{label}/{backend}/{plan_label}: logical traces differ"
                );
            }
        }
    }
}

/// Registered-view maintenance under faults: a 10-batch update stream on the
/// lossy reliable backends must replay the fault-free per-batch snapshots,
/// strategies, and maintenance loads bit for bit.
#[test]
fn update_streams_are_bit_identical_under_faults() {
    for (label, q, db) in [cases().remove(0), cases().remove(3)] {
        let mut mirror = db.clone();
        mirror.dedup_all();
        let batches = updates::update_stream(&q, &mirror, 10, 0.05, 0.0, 0xfeed);
        let drive = |make: &dyn Fn() -> Cluster| {
            let mut engine = QueryEngine::with_cluster(make(), Default::default());
            engine.enable_tracing(ObsConfig::default());
            let view = engine.register_view(&q, &db);
            let mut trace: Vec<(CountedSnapshot, String, u64)> = vec![(
                engine.view(view).snapshot(),
                "register".to_string(),
                engine.stats().max_load,
            )];
            for batch in &batches {
                let outcome = engine.apply_update(view, batch);
                trace.push((
                    engine.view(view).snapshot(),
                    format!("{}", outcome.strategy),
                    outcome.maintenance.max_load,
                ));
            }
            let events = engine
                .take_trace()
                .expect("tracing was enabled")
                .logical_events();
            (trace, events)
        };
        let reference = drive(&|| Cluster::new(P));
        for (plan_label, plan) in fault_plans() {
            for (backend, make) in faulty_backends(plan, false) {
                let (trace, events) = drive(make.as_ref());
                assert_eq!(
                    trace, reference.0,
                    "{label}/{backend}/{plan_label}: update trace differs"
                );
                assert_eq!(
                    events, reference.1,
                    "{label}/{backend}/{plan_label}: logical event traces differ"
                );
            }
        }
    }
}

/// The recovery traffic really is metered out-of-band: a lossy link forces
/// retransmissions, and the wire-byte breakdown separates payload,
/// retransmit, and ack bytes while the logical inbox stays identical to the
/// fault-free sequential exchange.
#[test]
fn retransmit_and_ack_traffic_is_metered_separately() {
    let outbox = |p: usize| -> Vec<Vec<(usize, u64)>> {
        (0..p)
            .map(|s| (0..p).map(|d| (d, (s * 100 + d) as u64)).collect())
            .collect()
    };
    let mut reference = Cluster::new(P);
    let want = reference.net().exchange(outbox(P));

    let mut lossy = Cluster::new_net_faulty(P, FaultPlan::dropping(0xbeef, 200));
    let got = lossy.net().exchange(outbox(P));
    assert_eq!(got, want, "lossy exchange corrupted the inbox");
    assert_eq!(lossy.stats(), reference.stats(), "lossy exchange load");
    let b = lossy
        .executor()
        .as_net()
        .expect("faulty cluster runs the net executor")
        .wire_breakdown();
    assert!(b.payload > 0, "payload bytes metered");
    assert!(b.ack > 0, "ack bytes metered");
    assert!(
        b.retransmit > 0,
        "a 20% drop rate must force at least one retransmission"
    );
    assert_eq!(b.total(), b.payload + b.retransmit + b.ack);
}

/// The tentpole acceptance: a server crash mid-update-stream. The injected
/// crash kills one server thread during a batch; the supervisor detects the
/// dead round, restores the view from its checkpoint, replays the pending
/// batches, and the stream converges to the oracle — on the same engine,
/// without re-registering.
#[test]
fn mid_stream_crash_recovers_from_checkpoint() {
    let (_, q, db) = cases().remove(0); // star3
    let mut mirror = db.clone();
    mirror.dedup_all();
    let batches = updates::update_stream(&q, &mirror, 10, 0.05, 0.0, 0xfeed);

    // Dry run, fault-free: find the exchange-sequence window of the update
    // stream so the crash can be timed to fire mid-stream. Logical stats are
    // deterministic across backends, so the window transfers exactly.
    let (reference, seq_after_register, seq_after_stream) = {
        let mut engine = QueryEngine::with_cluster(Cluster::new(P), Default::default());
        let view = engine.register_view(&q, &db);
        let after_register = engine.stats().exchanges;
        for batch in &batches {
            engine.apply_update(view, batch);
        }
        (
            engine.view(view).snapshot(),
            after_register,
            engine.stats().exchanges,
        )
    };
    assert!(
        seq_after_stream > seq_after_register + 4,
        "stream too short to crash into"
    );
    let crash_seq = (seq_after_register + seq_after_stream) / 2;

    let plan = FaultPlan {
        seed: 0xc4a5,
        crash: Some(CrashPoint {
            server: 2,
            at_seq: crash_seq,
        }),
        ..FaultPlan::default()
    };
    let mut engine =
        QueryEngine::with_cluster(Cluster::new_net_faulty(P, plan), Default::default());
    let view = engine.register_view(&q, &db);
    let run = engine.apply_updates_supervised(view, &batches, 3);
    assert_eq!(run.applied.len(), batches.len());
    assert!(
        run.recoveries >= 1,
        "the injected crash at seq {crash_seq} never fired \
         (stream spans [{seq_after_register}, {seq_after_stream}])"
    );
    for batch in &batches {
        batch.apply_to(&mut mirror);
    }
    let mut want = ram::naive_join(&q, &mirror);
    want.sort_unstable();
    want.dedup();
    let want: CountedSnapshot = want.into_iter().map(|t| (t, 1)).collect();
    assert_eq!(
        engine.view(view).snapshot(),
        want,
        "recovered view diverged from the oracle"
    );
    assert_eq!(
        engine.view(view).snapshot(),
        reference,
        "recovered view diverged from the fault-free run"
    );
}

/// Adversarial delivery order in isolation: the same query on two shuffle
/// seeds and on the plain channel transport — three different physical
/// arrival orders — must yield one logical result and one `Stats`.
#[test]
fn shuffled_delivery_order_never_changes_results() {
    let (label, q, db) = cases().remove(3); // line3, OUT >> IN: heavy traffic
    let mut reference: Option<(Vec<Tuple>, Stats, Vec<Event>)> = None;
    for seed in [1u64, 0x5eed, u64::MAX] {
        let make = || {
            Cluster::new_net_with_transport(
                P,
                Arc::new(ShuffleTransport::new(ChanTransport::new(P), seed)),
            )
        };
        let (tuples, stats, events) = engine_run(&make, &q, &db);
        match &reference {
            None => {
                assert_eq!(
                    tuples,
                    oracle(&q, &db),
                    "{label}/shuffle-{seed}: wrong answer"
                );
                reference = Some((tuples, stats, events));
            }
            Some((ref_tuples, ref_stats, ref_events)) => {
                assert_eq!(
                    &tuples, ref_tuples,
                    "{label}/shuffle-{seed}: outputs differ"
                );
                assert_eq!(&stats, ref_stats, "{label}/shuffle-{seed}: stats differ");
                assert_eq!(&events, ref_events, "{label}/shuffle-{seed}: traces differ");
            }
        }
    }
}
