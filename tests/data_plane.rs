//! Differential tests for the columnar data plane: `TupleBlock` must be an
//! exact drop-in for `Vec<Tuple>` semantics (build → iterate → sort →
//! dedup), and the radix block exchange must deliver inboxes bit-identical
//! to the per-tuple exchange — same rows, same order, same `Stats` — on
//! random instances, under both executors.

use acyclic_joins::mpc::{Cluster, ParExecutor, RowOutbox};
use acyclic_joins::prelude::*;
use aj_relation::TupleBlock;
use proptest::prelude::*;

/// Deterministic pseudo-random row stream for a given seed.
fn random_rows(seed: u64, n: usize, arity: usize, domain: u64) -> Vec<Vec<u64>> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| (0..arity).map(|_| next() % domain).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Build → iterate → sort → dedup through a block matches the same
    /// pipeline through owned tuples, row for row.
    #[test]
    fn block_round_trips_against_tuples(seed in 0u64..10_000, n in 0usize..400, arity in 0usize..6) {
        let rows = random_rows(seed, n, arity, 7); // small domain forces duplicates
        let mut block = TupleBlock::new(arity);
        let mut tuples: Vec<Tuple> = Vec::new();
        for r in &rows {
            block.push_row(r);
            tuples.push(Tuple::new(r));
        }
        // Iteration order and content agree before any reordering.
        prop_assert_eq!(block.len(), tuples.len());
        for (row, t) in block.iter().zip(&tuples) {
            prop_assert_eq!(row, t.values());
        }
        prop_assert_eq!(block.to_tuples(), tuples.clone());
        // sort + dedup agree with the Vec<Tuple> reference pipeline.
        block.sort_dedup();
        tuples.sort_unstable();
        tuples.dedup();
        prop_assert_eq!(block.to_tuples(), tuples);
    }

    /// The any-arity in-place sort (the cycle-following permutation path,
    /// arity > 4) matches the `Vec<Tuple>` reference pipeline at every
    /// width, including with heavy duplication, and composes with dedup.
    #[test]
    fn wide_blocks_sort_in_place(seed in 0u64..10_000, n in 0usize..300, arity in 5usize..12) {
        let rows = random_rows(seed, n, arity, 5); // tiny domain: many duplicates, long cycles
        let mut block = TupleBlock::new(arity);
        let mut tuples: Vec<Tuple> = Vec::new();
        for r in &rows {
            block.push_row(r);
            tuples.push(Tuple::new(r));
        }
        block.sort_rows();
        tuples.sort_unstable();
        prop_assert_eq!(block.to_tuples(), tuples.clone());
        block.dedup_rows();
        tuples.dedup();
        prop_assert_eq!(block.to_tuples(), tuples);
    }

    /// Projection through a block matches per-tuple projection.
    #[test]
    fn block_projection_matches_tuples(seed in 0u64..10_000, n in 0usize..300) {
        let rows = random_rows(seed, n, 4, 1000);
        let tuples: Vec<Tuple> = rows.iter().map(Tuple::new).collect();
        let block = TupleBlock::from_tuples(4, &tuples);
        let positions = [3usize, 1, 1];
        let mut out = TupleBlock::new(3);
        block.project_into(&positions, &mut out);
        let want: Vec<Tuple> = rows.iter().map(|r| Tuple::new(r).project(&positions)).collect();
        prop_assert_eq!(out.to_tuples(), want);
    }

    /// The radix block exchange delivers exactly the inboxes of the
    /// per-tuple exchange — identical rows, identical (sender, send-order)
    /// order, identical stats — on random instances, on both executors.
    #[test]
    fn radix_exchange_bit_identical_to_per_tuple(
        seed in 0u64..10_000,
        p in 1usize..9,
        per_server in 0usize..150,
        arity in 1usize..5,
    ) {
        let shards: Vec<Vec<Vec<u64>>> = (0..p)
            .map(|s| random_rows(seed ^ (s as u64) << 32, per_server, arity, 1 << 20))
            .collect();
        let dest_of = |row: &[u64]| (row.iter().sum::<u64>() % p as u64) as usize;

        // Reference: per-tuple exchange on a sequential cluster.
        let mut ref_cluster = Cluster::new(p);
        let ref_inbox = ref_cluster.net().exchange(
            shards
                .iter()
                .map(|rows| rows.iter().map(|r| (dest_of(r), r.clone())).collect())
                .collect(),
        );

        // Block exchange, sequential and 4-thread parallel.
        let build_outbox = || -> Vec<RowOutbox> {
            shards
                .iter()
                .map(|rows| {
                    let mut ob = RowOutbox::with_capacity(arity, rows.len());
                    for r in rows {
                        ob.push(dest_of(r), r);
                    }
                    ob
                })
                .collect()
        };
        let mut seq = Cluster::new(p);
        let seq_inbox = seq.net().exchange_rows(arity, build_outbox());
        let mut par = Cluster::with_executor(p, Box::new(ParExecutor::with_threads(4)));
        let par_inbox = par.net().exchange_rows(arity, build_outbox());

        prop_assert_eq!(&seq_inbox, &par_inbox);
        prop_assert_eq!(seq.stats(), par.stats());
        prop_assert_eq!(seq.stats(), ref_cluster.stats());
        for (items, block) in ref_inbox.iter().zip(&seq_inbox) {
            prop_assert_eq!(items.len(), block.len());
            for (item, row) in items.iter().zip(block.iter()) {
                prop_assert_eq!(item.as_slice(), row);
            }
        }
    }
}

/// Rows that need replication (the HyperCube pattern: one row, many cells)
/// are staged once per destination and arrive exactly as the per-tuple
/// exchange would deliver the clones.
#[test]
fn replicated_rows_match_per_tuple_clones() {
    let p = 4;
    let rows = random_rows(7, 64, 2, 100);
    let mut ref_cluster = Cluster::new(p);
    let ref_inbox = ref_cluster.net().exchange(
        (0..p)
            .map(|s| {
                if s != 0 {
                    return Vec::new();
                }
                rows.iter()
                    .flat_map(|r| (0..p).map(move |d| (d, r.clone())))
                    .collect()
            })
            .collect(),
    );
    let mut cluster = Cluster::new(p);
    let inbox = cluster.net().exchange_rows(2, {
        (0..p)
            .map(|s| {
                let mut ob = RowOutbox::new(2);
                if s == 0 {
                    for r in &rows {
                        for d in 0..p {
                            ob.push(d, r);
                        }
                    }
                }
                ob
            })
            .collect()
    });
    assert_eq!(cluster.stats(), ref_cluster.stats());
    for (items, block) in ref_inbox.iter().zip(&inbox) {
        assert_eq!(items.len(), block.len());
        for (item, row) in items.iter().zip(block.iter()) {
            assert_eq!(item.as_slice(), row);
        }
    }
}

/// A cluster whose `ParExecutor` pool is reused across many exchanges (the
/// serving pattern: one long-lived cluster, thousands of regions) keeps
/// producing inboxes and stats identical to fresh sequential clusters.
#[test]
fn persistent_pool_reuse_stays_bit_identical() {
    let p = 6;
    let mut par = Cluster::with_executor(p, Box::new(ParExecutor::with_threads(4)));
    for round in 0..60u64 {
        let arity = 1 + (round % 3) as usize;
        let shards: Vec<Vec<Vec<u64>>> = (0..p)
            .map(|s| random_rows(round ^ (s as u64) << 40, 90, arity, 512))
            .collect();
        let dest_of = |row: &[u64]| (row[0] % p as u64) as usize;
        let build = || {
            shards
                .iter()
                .map(|rows| {
                    let mut ob = RowOutbox::with_capacity(arity, rows.len());
                    for r in rows {
                        ob.push(dest_of(r), r);
                    }
                    ob
                })
                .collect()
        };
        let mut seq = Cluster::new(p);
        let seq_inbox = seq.net().exchange_rows(arity, build());
        let par_inbox = par.net().exchange_rows(arity, build());
        assert_eq!(seq_inbox, par_inbox, "round {round}");
        // The long-lived cluster accumulates stats; compare the per-round
        // increment instead of the totals.
        assert_eq!(
            par.stats().round_maxima().last().copied(),
            seq.stats().round_maxima().last().copied(),
            "round {round}"
        );
    }
}

/// Skew-free routing stays bit-identical to the pre-skew data plane: on a
/// uniform instance the detected-and-thresholded profile is empty, and the
/// hybrid join's rounds — stats included — are exactly the hash join's, on
/// both executors.
#[test]
fn skew_free_hybrid_routing_is_bit_identical_to_hash() {
    use acyclic_joins::core::binary::{detect_join_skew, hash_join, hybrid_hash_join};
    use acyclic_joins::core::DistRelation;
    let p = 8;
    let rows1 = random_rows(0xaa, 600, 2, 97);
    let rows2 = random_rows(0xbb, 600, 2, 97);
    let rel = |attrs: Vec<usize>, rows: &[Vec<u64>]| {
        let mut r = acyclic_joins::relation::Relation::new(
            attrs,
            rows.iter().map(|r| Tuple::new(r.as_slice())).collect(),
        );
        r.dedup();
        r
    };
    let left = rel(vec![0, 1], &rows1);
    let right = rel(vec![1, 2], &rows2);
    let run = |parallel: bool, hybrid: bool| {
        let mut cluster = if parallel {
            Cluster::with_executor(p, Box::new(ParExecutor::with_threads(4)))
        } else {
            Cluster::new(p)
        };
        let skew = {
            let mut net = cluster.net();
            let l = DistRelation::distribute(&left, p);
            let r = DistRelation::distribute(&right, p);
            detect_join_skew(&mut net, &l, &r, 16).significant(p)
        };
        assert!(
            !skew.is_skewed(),
            "uniform keys must threshold to an empty profile"
        );
        cluster.reset_stats(); // compare the join rounds in isolation
        let out = {
            let mut net = cluster.net();
            let l = DistRelation::distribute(&left, p);
            let r = DistRelation::distribute(&right, p);
            let mut seed = 11;
            if hybrid {
                hybrid_hash_join(&mut net, l, r, &skew, &mut seed)
            } else {
                hash_join(&mut net, l, r, &mut seed)
            }
        };
        (out.gather_free().tuples, cluster.stats().clone())
    };
    let (hash_out, hash_stats) = run(false, false);
    for (parallel, hybrid) in [(false, true), (true, false), (true, true)] {
        let (out, stats) = run(parallel, hybrid);
        assert_eq!(out, hash_out, "parallel={parallel} hybrid={hybrid}");
        assert_eq!(stats, hash_stats, "parallel={parallel} hybrid={hybrid}");
    }
}

// ---------------------------------------------------------------------------
// Wire codec: every frame that crosses the network backend must round-trip
// exactly, and encoding must be canonical (repeated encodes byte-identical),
// or the conformance oracle's bit-identity guarantee has no foundation.
// ---------------------------------------------------------------------------

use acyclic_joins::mpc::{Frame, FrameKind, Wire};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Rows frames round-trip `TupleBlock`s of every arity 0–8 — through
    /// words, through bytes, and through the stream reader — and repeated
    /// encodes of the same frame are byte-identical.
    #[test]
    fn wire_rows_frames_round_trip(
        seed in 0u64..10_000,
        n in 0usize..200,
        arity in 0usize..9,
        seq in 0u64..1_000,
        from in 0u64..16,
    ) {
        let rows = random_rows(seed, n, arity, 50);
        let mut block = TupleBlock::new(arity);
        for r in &rows {
            block.push_row(r);
        }
        let frame = Frame::new(FrameKind::Rows, seq, from, &block);
        // Word-level round trip.
        let back = Frame::decode_words(&frame.encode_words());
        prop_assert_eq!(&back, &frame);
        let decoded: TupleBlock = back.decode_body();
        prop_assert_eq!(decoded.to_tuples(), block.to_tuples());
        // Canonical: two encodes of one logical frame are byte-identical.
        prop_assert_eq!(frame.to_bytes(), back.to_bytes());
        prop_assert_eq!(frame.wire_bytes() as usize, frame.to_bytes().len());
        // Stream round trip: one frame, then clean EOF.
        let bytes = frame.to_bytes();
        let mut cursor = std::io::Cursor::new(bytes);
        let streamed = Frame::read_from(&mut cursor).unwrap();
        prop_assert_eq!(streamed, Some(frame));
        prop_assert_eq!(Frame::read_from(&mut cursor).unwrap(), None);
    }

    /// Signed delta-weight payloads — the incremental engine's update
    /// traffic — round-trip with their signs intact, including `i64::MIN`
    /// magnitudes mixed in.
    #[test]
    fn wire_signed_deltas_round_trip(
        seed in 0u64..10_000,
        n in 0usize..100,
        arity in 0usize..5,
        extreme in 0usize..3,
    ) {
        let rows = random_rows(seed, n, arity, 20);
        let mut deltas: Vec<(Tuple, i64)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let w = (i as i64 - n as i64 / 2) * 3;
                (Tuple::new(r), w)
            })
            .collect();
        if extreme > 0 && !deltas.is_empty() {
            deltas[0].1 = i64::MIN;
        }
        if extreme > 1 && deltas.len() > 1 {
            deltas[1].1 = i64::MAX;
        }
        let frame = Frame::new(FrameKind::Items, seed, 0, &deltas);
        let back = Frame::decode_words(&frame.encode_words());
        let decoded: Vec<(Tuple, i64)> = back.decode_body();
        prop_assert_eq!(decoded, deltas);
    }
}

/// Empty frames are legal traffic (every view member sends to every view
/// member each exchange, most frames carry nothing) — they must round-trip
/// and cost exactly the fixed header.
#[test]
fn wire_empty_frames_round_trip() {
    let empty_items = Frame::new(FrameKind::Items, 7, 3, &Vec::<(Tuple, u64)>::new());
    let back = Frame::decode_words(&empty_items.encode_words());
    assert_eq!(back, empty_items);
    let decoded: Vec<(Tuple, u64)> = back.decode_body();
    assert!(decoded.is_empty());
    // length-prefix word + (magic, kind, seq, from, body_len) + 1 body word
    // for the Vec length.
    assert_eq!(empty_items.wire_bytes(), 8 * (1 + 5 + 1));

    let empty_rows = Frame::new(FrameKind::Rows, 0, 0, &TupleBlock::new(4));
    let back = Frame::decode_words(&empty_rows.encode_words());
    let decoded: TupleBlock = back.decode_body();
    assert_eq!(decoded.len(), 0);
    assert_eq!(decoded.arity(), 4);
}

/// Tuples at the inline/heap representation boundary (arity 3 is the widest
/// inline tuple) encode identically regardless of which representation the
/// sender held: the codec sees values, not storage.
#[test]
fn wire_tuples_cross_inline_boundary() {
    for arity in 0..=6usize {
        let values: Vec<u64> = (0..arity as u64).map(|i| i * 1_000_003).collect();
        let t = Tuple::new(&values);
        let mut words = Vec::new();
        t.encode(&mut words);
        assert_eq!(words[0], arity as u64, "arity prefix");
        assert_eq!(words.len(), 1 + arity);
        let mut r = acyclic_joins::mpc::WireReader::new(&words);
        let back = Tuple::decode(&mut r);
        assert!(r.is_exhausted());
        assert_eq!(back, t);
        // Canonical across re-encodes of the decoded value.
        let mut words2 = Vec::new();
        back.encode(&mut words2);
        assert_eq!(words2, words);
    }
}
