//! Differential tests: every MPC algorithm must agree with the RAM-model
//! Yannakakis oracle on randomized instances (property-based, seeded).

use acyclic_joins::core::dist::distribute_db;
use acyclic_joins::core::{acyclic, hierarchical, planner, yannakakis};
use acyclic_joins::instancegen::random;
use acyclic_joins::prelude::*;
use acyclic_joins::relation::ram;
use proptest::prelude::*;

fn oracle_sorted(q: &Query, db: &Database) -> Vec<Tuple> {
    let (_, mut t) = ram::join(q, db);
    t.sort_unstable();
    t
}

fn run_sorted(
    p: usize,
    q: &Query,
    db: &Database,
    f: impl FnOnce(
        &mut acyclic_joins::mpc::Net,
        &Query,
        acyclic_joins::core::DistDatabase,
    ) -> acyclic_joins::core::DistRelation,
) -> Vec<Tuple> {
    let mut cluster = Cluster::new(p);
    let out = {
        let mut net = cluster.net();
        let dist = distribute_db(db, p);
        f(&mut net, q, dist)
    };
    let mut got = out.gather_free().tuples;
    got.sort_unstable();
    got
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The Theorem-7 algorithm matches the oracle on arbitrary random
    /// acyclic queries and instances.
    #[test]
    fn acyclic_solve_matches_oracle(seed in 0u64..5000, m in 2usize..5, p in 2usize..6) {
        let q = random::random_acyclic_query(m, seed);
        let db = random::random_instance(&q, 25, 5, seed ^ 0x5a5a);
        let want = oracle_sorted(&q, &db);
        let got = run_sorted(p, &q, &db, |net, q, dist| {
            let mut s = seed | 1;
            acyclic::solve(net, q, dist, &mut s)
        });
        prop_assert_eq!(got, want);
    }

    /// Yannakakis matches the oracle under a random join order.
    #[test]
    fn yannakakis_matches_oracle_any_order(seed in 0u64..5000, m in 2usize..5) {
        let q = random::random_acyclic_query(m, seed);
        let db = random::random_instance(&q, 30, 6, seed ^ 0x1111);
        let want = oracle_sorted(&q, &db);
        // Random-ish but valid order: rotate the default order.
        let tree = q.join_tree().unwrap();
        let mut order = tree.top_down();
        let len = order.len().max(1);
        order.rotate_right((seed as usize) % len);
        // Keep prefix-connectivity by falling back to default when rotated.
        let order = if seed % 2 == 0 { Some(order) } else { None };
        let got = run_sorted(4, &q, &db, |net, q, dist| {
            let mut s = seed | 1;
            yannakakis::yannakakis(net, q, dist, order, &mut s)
        });
        prop_assert_eq!(got, want);
    }

    /// The planner's choice always matches the oracle, whatever the class.
    #[test]
    fn planner_matches_oracle(seed in 0u64..5000, m in 1usize..5) {
        let q = random::random_acyclic_query(m, seed);
        let db = random::random_instance(&q, 20, 4, seed ^ 0xabcd);
        let want = oracle_sorted(&q, &db);
        let mut cluster = Cluster::new(4);
        let out = {
            let mut net = cluster.net();
            let mut s = seed | 1;
            let (_, out) = planner::execute_best(&mut net, &q, &db, &mut s);
            out
        };
        let mut got = out.gather_free().tuples;
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// No algorithm ever emits a duplicate join result.
    #[test]
    fn no_duplicate_emission(seed in 0u64..5000, m in 2usize..4) {
        let q = random::random_acyclic_query(m, seed);
        let db = random::random_instance(&q, 40, 4, seed ^ 0x7777);
        let got = run_sorted(4, &q, &db, |net, q, dist| {
            let mut s = seed | 1;
            acyclic::solve(net, q, dist, &mut s)
        });
        let mut dedup = got.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), got.len());
    }
}

/// The Theorem-3 algorithm matches the oracle on r-hierarchical queries
/// (deterministic corpus: random generation rarely yields this class).
#[test]
fn hierarchical_solve_matches_oracle_on_corpus() {
    let corpus: Vec<Query> = vec![
        acyclic_joins::instancegen::shapes::rh_example_query(),
        acyclic_joins::instancegen::shapes::star_query(3),
        acyclic_joins::instancegen::shapes::tall_flat_q1(),
        acyclic_joins::instancegen::shapes::hierarchical_q2(),
        acyclic_joins::instancegen::shapes::cartesian_query(3),
    ];
    for (i, q) in corpus.iter().enumerate() {
        for seed in [1u64, 7, 42] {
            let db = random::random_instance(q, 25, 4, seed.wrapping_add(i as u64 * 97));
            let want = oracle_sorted(q, &db);
            let got = run_sorted(4, q, &db, |net, q, dist| {
                let mut s = seed | 1;
                hierarchical::solve(net, q, dist, &mut s)
            });
            assert_eq!(got, want, "query {q}, seed {seed}");
        }
    }
}

/// Binary joins across p values, including p = 1.
#[test]
fn binary_join_across_cluster_sizes() {
    let q = acyclic_joins::instancegen::line_query(2);
    let db = random::random_instance(&q, 60, 8, 5);
    let want = oracle_sorted(&q, &db);
    for p in [1usize, 2, 3, 8, 17] {
        let got = run_sorted(p, &q, &db, |net, _q, dist| {
            let mut s = 3;
            let mut it = dist.into_iter();
            let l = it.next().unwrap();
            let r = it.next().unwrap();
            acyclic_joins::core::binary::binary_join(net, l, r, &mut s)
        });
        assert_eq!(got, want, "p = {p}");
    }
}
