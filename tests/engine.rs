//! Differential tests for the `QueryEngine` serving layer: a long-lived
//! cluster answering a 100+-query mixed batch must match the RAM oracle,
//! attribute load per query through stats epochs that reconcile with the
//! cumulative stats, return bit-identical runs on plan-cache hits, never do
//! worse than class-only dispatch on measured load, and report identical
//! per-query loads on both executors.

use acyclic_joins::core::engine::{EngineConfig, QueryEngine, QueryOutcome};
use acyclic_joins::instancegen::{fig3, fig4, fig6, line_query, random, shapes};
use acyclic_joins::prelude::*;
use acyclic_joins::relation::ram;

fn oracle(q: &Query, db: &Database) -> Vec<Tuple> {
    let mut t = if q.is_acyclic() {
        ram::join(q, db).1
    } else {
        ram::naive_join(q, db)
    };
    t.sort_unstable();
    t
}

fn sorted(out: &acyclic_joins::core::DistRelation) -> Vec<Tuple> {
    let mut t = out.gather_free().tuples;
    t.sort_unstable();
    t
}

fn dedup(mut db: Database) -> Database {
    db.dedup_all();
    db
}

/// A 100+-query batch mixing all five example shapes.
fn mixed_batch() -> Vec<(Query, Database)> {
    let mut batch: Vec<(Query, Database)> = Vec::new();
    let star = shapes::star_query(3);
    let rh = shapes::rh_example_query();
    let tf = shapes::tall_flat_q1();
    let line = line_query(3);
    for i in 0..21u64 {
        batch.push((
            star.clone(),
            dedup(random::random_instance(&star, 40, 10, 1000 + i)),
        ));
        batch.push((
            rh.clone(),
            dedup(random::random_instance(&rh, 40, 8, 2000 + i)),
        ));
        batch.push((
            tf.clone(),
            dedup(random::random_instance(&tf, 36, 4, 3000 + i)),
        ));
        batch.push(match i % 2 {
            0 => (line.clone(), fig3::one_sided(32, 64 + 32 * i).db),
            _ => {
                let n = 32u64;
                (
                    line.clone(),
                    acyclic_joins::relation::database_from_rows(
                        &line,
                        &[
                            (0..n).map(|v| vec![v, (v + i) % n]).collect(),
                            (0..n).map(|v| vec![v, (v + i) % n]).collect(),
                            (0..n).map(|v| vec![v, (v + i) % n]).collect(),
                        ],
                    ),
                )
            }
        });
        let inst = fig6::generate(24, 48, 4000 + i);
        batch.push((inst.query, inst.db));
    }
    batch
}

/// The headline serving test: one cluster, 105 mixed queries, every answer
/// oracle-checked, every count exact, epochs reconciling with global stats.
#[test]
fn engine_serves_mixed_batch_against_oracle() {
    let batch = mixed_batch();
    assert!(batch.len() >= 100, "mixed batch must exercise 100+ queries");
    let mut engine = QueryEngine::new(4);
    let outcomes = engine.run_batch(&batch);
    for ((q, db), o) in batch.iter().zip(&outcomes) {
        let want = oracle(q, db);
        assert_eq!(sorted(&o.output), want, "engine answer diverged on {q}");
        if let Some(out) = o.out_size {
            assert_eq!(out as usize, want.len(), "Corollary-4 count wrong on {q}");
        }
    }
    assert!(
        acyclic_joins::core::engine::epochs_reconcile(&outcomes, engine.stats()),
        "per-query epochs must reconcile with the cumulative stats"
    );
    // Five distinct shapes → everything after the first occurrences hits.
    assert_eq!(engine.cache_len(), 5);
    assert_eq!(engine.cache_hits(), batch.len() as u64 - 5);
}

/// Plan-cache hits must replay the cold run bit-for-bit: same tuples, same
/// plan, same per-epoch loads.
#[test]
fn cache_hits_replay_cold_runs_exactly() {
    let batch = mixed_batch();
    let mut engine = QueryEngine::new(4);
    let cold: Vec<QueryOutcome> = engine.run_batch(&batch[..5]);
    let hot: Vec<QueryOutcome> = engine.run_batch(&batch[..5]);
    for (a, b) in cold.iter().zip(&hot) {
        assert!(!a.cache_hit && b.cache_hit);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.planning, b.planning, "planning epoch must replay");
        assert_eq!(a.execution, b.execution, "execution epoch must replay");
        assert_eq!(sorted(&a.output), sorted(&b.output));
    }
}

/// The cost-based choice is never worse (measured execution load) than
/// class-only dispatch — checked on the Fig-3 / Fig-4 hard instances and on
/// the small-OUT regime where the planner actually switches algorithms.
#[test]
fn cost_based_never_worse_than_class_dispatch() {
    let line = line_query(3);
    let mut cases: Vec<(Query, Database)> = vec![
        (line.clone(), fig3::one_sided(64, 256).db),
        (line.clone(), fig3::one_sided(64, 1024).db),
        (line.clone(), fig3::two_sided(64, 1024).db),
        (line.clone(), fig4::generate(64, 256, 7).db),
        (line.clone(), fig4::generate(64, 2048, 8).db),
    ];
    // Sparse small-OUT instances (most tuples dangle): the Yannakakis
    // switch. Both plans start with the seed-identical full reduce, which
    // dominates the load here, so the switch can only tie or win.
    for n in [64u64, 128] {
        cases.push((line.clone(), fig3::sparse_small_out(n, 0).db));
    }
    let mut switched = false;
    for (q, db) in &cases {
        let mut cost_engine = QueryEngine::new(8);
        let mut class_engine = QueryEngine::with_cluster(
            acyclic_joins::mpc::Cluster::new(8),
            EngineConfig {
                cost_based: false,
                ..EngineConfig::default()
            },
        );
        let a = cost_engine.run(q, db);
        let b = class_engine.run(q, db);
        assert_eq!(sorted(&a.output), sorted(&b.output));
        assert!(
            a.execution.max_load <= b.execution.max_load,
            "cost-based plan {} (L={}) worse than class plan {} (L={}) on IN={} OUT={:?}",
            a.plan,
            a.execution.max_load,
            b.plan,
            b.execution.max_load,
            a.in_size,
            a.out_size,
        );
        switched |= a.plan != b.plan;
    }
    assert!(
        switched,
        "at least one case must exercise a genuine plan switch"
    );
}

/// Per-query loads are bit-identical across SeqExecutor and ParExecutor.
#[test]
fn executors_report_identical_per_query_epochs() {
    let batch: Vec<(Query, Database)> = mixed_batch().into_iter().take(25).collect();
    let mut seq = QueryEngine::new(4);
    let mut par = QueryEngine::new_parallel(4);
    let a = seq.run_batch(&batch);
    let b = par.run_batch(&batch);
    for ((x, y), (q, _)) in a.iter().zip(&b).zip(&batch) {
        assert_eq!(x.plan, y.plan, "plan diverged on {q}");
        assert_eq!(x.planning, y.planning, "planning epoch diverged on {q}");
        assert_eq!(x.execution, y.execution, "execution epoch diverged on {q}");
        assert_eq!(
            sorted(&x.output),
            sorted(&y.output),
            "result diverged on {q}"
        );
    }
    assert_eq!(seq.stats(), par.stats());
}
