//! Executor equivalence: `SeqExecutor` and `ParExecutor` must produce
//! identical join outputs and identical `Stats` (max load included) on
//! random instances from `aj_instancegen` — the guarantee that makes the
//! parallel executor safe to use for every load measurement in this
//! repository.
//!
//! The parallel cluster is forced to 4 worker threads so genuine
//! concurrency is exercised even on single-core CI hosts.

use acyclic_joins::core::dist::distribute_db;
use acyclic_joins::core::{acyclic, hierarchical, planner, yannakakis, DistDatabase, DistRelation};
use acyclic_joins::instancegen::random;
use acyclic_joins::mpc::{Cluster, Net, ParExecutor, Stats};
use acyclic_joins::prelude::*;
use proptest::prelude::*;

/// Run `f` on a sequential and on a (4-thread) parallel cluster; return both
/// sorted outputs and both stats.
fn both_executors(
    p: usize,
    q: &Query,
    db: &Database,
    f: impl Fn(&mut Net, &Query, DistDatabase) -> DistRelation,
) -> ((Vec<Tuple>, Stats), (Vec<Tuple>, Stats)) {
    let run = |mut cluster: Cluster| {
        let out = {
            let mut net = cluster.net();
            let dist = distribute_db(db, p);
            f(&mut net, q, dist)
        };
        let mut tuples = out.gather_free().tuples;
        tuples.sort_unstable();
        (tuples, cluster.stats().clone())
    };
    let seq = run(Cluster::new(p));
    let par = run(Cluster::with_executor(
        p,
        Box::new(ParExecutor::with_threads(4)),
    ));
    (seq, par)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Theorem-7 (acyclic) solver: identical outputs and identical stats —
    /// exchanges, max load, total messages, per-server peaks.
    #[test]
    fn acyclic_solver_equivalent(seed in 0u64..4000, m in 2usize..5, p in 2usize..6) {
        let q = random::random_acyclic_query(m, seed);
        let db = random::random_instance(&q, 25, 5, seed ^ 0x00e1);
        let ((seq_out, seq_stats), (par_out, par_stats)) =
            both_executors(p, &q, &db, |net, q, dist| {
                let mut s = seed | 1;
                acyclic::solve(net, q, dist, &mut s)
            });
        prop_assert_eq!(seq_out, par_out);
        prop_assert_eq!(seq_stats, par_stats);
    }

    /// Yannakakis baseline: same equivalence.
    #[test]
    fn yannakakis_equivalent(seed in 0u64..4000, m in 2usize..5) {
        let q = random::random_acyclic_query(m, seed);
        let db = random::random_instance(&q, 30, 6, seed ^ 0x00e2);
        let ((seq_out, seq_stats), (par_out, par_stats)) =
            both_executors(4, &q, &db, |net, q, dist| {
                let mut s = seed | 1;
                yannakakis::yannakakis(net, q, dist, None, &mut s)
            });
        prop_assert_eq!(seq_out, par_out);
        prop_assert_eq!(seq_stats, par_stats);
    }

    /// The planner (whatever algorithm it dispatches to): same equivalence,
    /// and both executors agree with the RAM oracle.
    #[test]
    fn planner_equivalent_and_correct(seed in 0u64..4000, m in 1usize..5) {
        let q = random::random_acyclic_query(m, seed);
        let db = random::random_instance(&q, 20, 4, seed ^ 0x00e3);
        let run = |mut cluster: Cluster| {
            let out = {
                let mut net = cluster.net();
                let mut s = seed | 1;
                let (_, out) = planner::execute_best(&mut net, &q, &db, &mut s);
                out
            };
            let mut tuples = out.gather_free().tuples;
            tuples.sort_unstable();
            (tuples, cluster.stats().clone())
        };
        let (seq_out, seq_stats) = run(Cluster::new(4));
        let (par_out, par_stats) = run(Cluster::with_executor(
            4,
            Box::new(ParExecutor::with_threads(4)),
        ));
        let (_, mut want) = acyclic_joins::relation::ram::join(&q, &db);
        want.sort_unstable();
        prop_assert_eq!(&seq_out, &want);
        prop_assert_eq!(seq_out, par_out);
        prop_assert_eq!(seq_stats, par_stats);
    }
}

/// Theorem-3 (r-hierarchical) solver on its deterministic corpus.
#[test]
fn hierarchical_solver_equivalent_on_corpus() {
    let corpus: Vec<Query> = vec![
        acyclic_joins::instancegen::shapes::rh_example_query(),
        acyclic_joins::instancegen::shapes::star_query(3),
        acyclic_joins::instancegen::shapes::tall_flat_q1(),
        acyclic_joins::instancegen::shapes::hierarchical_q2(),
        acyclic_joins::instancegen::shapes::cartesian_query(3),
    ];
    for (i, q) in corpus.iter().enumerate() {
        for seed in [1u64, 9, 33] {
            let db = random::random_instance(q, 25, 4, seed.wrapping_add(i as u64 * 131));
            let ((seq_out, seq_stats), (par_out, par_stats)) =
                both_executors(4, q, &db, |net, q, dist| {
                    let mut s = seed | 1;
                    hierarchical::solve(net, q, dist, &mut s)
                });
            assert_eq!(seq_out, par_out, "query {q}, seed {seed}");
            assert_eq!(seq_stats, par_stats, "query {q}, seed {seed}");
        }
    }
}

/// The persistent worker pool must behave identically across its whole
/// lifetime: one `ParExecutor` (and a clone sharing the same parked pool)
/// drives many queries back to back on long-lived clusters, and every
/// query's output and stats must match a fresh sequential cluster's.
#[test]
fn persistent_pool_serves_many_queries_bit_identically() {
    let p = 4;
    let exec = ParExecutor::with_threads(4);
    let mut par_a = Cluster::with_executor(p, Box::new(exec.clone()));
    let mut par_b = Cluster::with_executor(p, Box::new(exec)); // shares the pool
    for round in 0..12u64 {
        let q = random::random_acyclic_query(3, round * 17 + 1);
        let db = random::random_instance(&q, 30, 5, round ^ 0x5eed);
        let run_on = |cluster: &mut Cluster| {
            let before = cluster.stats().clone();
            let out = {
                let mut net = cluster.net();
                let dist = distribute_db(&db, p);
                let mut s = round | 1;
                yannakakis::yannakakis(&mut net, &q, dist, None, &mut s)
            };
            let mut tuples = out.gather_free().tuples;
            tuples.sort_unstable();
            (tuples, cluster.stats().delta_since(&before))
        };
        let mut seq = Cluster::new(p);
        let (seq_out, seq_delta) = run_on(&mut seq);
        let which = if round % 2 == 0 {
            &mut par_a
        } else {
            &mut par_b
        };
        let (par_out, par_delta) = run_on(which);
        assert_eq!(seq_out, par_out, "round {round}");
        assert_eq!(seq_delta, par_delta, "round {round}");
    }
}

/// The per-round load trace (not just the final max) must be identical:
/// exercise it by comparing stats after every intermediate step of a
/// multi-step pipeline on a skewed instance.
#[test]
fn skewed_binary_join_equivalent_with_grid_routing() {
    let (q, db) = random::skewed_binary(400, 0.3, 32, 7);
    let run = |mut cluster: Cluster| {
        let out = {
            let mut net = cluster.net();
            let dist = distribute_db(&db, 8);
            let mut s = 3;
            let mut it = dist.into_iter();
            let left = it.next().unwrap();
            let right = it.next().unwrap();
            acyclic_joins::core::binary::binary_join(&mut net, left, right, &mut s)
        };
        let mut tuples = out.gather_free().tuples;
        tuples.sort_unstable();
        (tuples, cluster.stats().clone())
    };
    let (seq_out, seq_stats) = run(Cluster::new(8));
    let (par_out, par_stats) = run(Cluster::with_executor(
        8,
        Box::new(ParExecutor::with_threads(4)),
    ));
    let _ = q;
    assert_eq!(seq_out, par_out);
    assert_eq!(seq_stats, par_stats);
}

/// The skew-aware path end to end — heavy-hitter detection, the hybrid
/// binary join, and the skew-aware HyperCube — must be bit-identical across
/// executors on a Zipf instance: same profiles, same outputs, same stats.
#[test]
fn skew_aware_path_equivalent_on_zipf() {
    use acyclic_joins::core::binary::{detect_join_skew, hybrid_hash_join};
    use acyclic_joins::core::hypercube::{
        detect_hypercube_skew, hypercube_join_skew, worst_case_shares,
    };
    let p = 8;
    // Binary hybrid.
    let inst = acyclic_joins::instancegen::skew::zipf_binary(1200, 1.1, 32, 77);
    let run_binary = |mut cluster: Cluster| {
        let out = {
            let mut net = cluster.net();
            let left = DistRelation::distribute(&inst.db.relations[0], p);
            let right = DistRelation::distribute(&inst.db.relations[1], p);
            let skew = detect_join_skew(&mut net, &left, &right, 8).significant(p);
            let mut seed = 5;
            hybrid_hash_join(&mut net, left, right, &skew, &mut seed)
        };
        let mut tuples = out.gather_free().tuples;
        tuples.sort_unstable();
        (tuples, cluster.stats().clone())
    };
    let (seq_out, seq_stats) = run_binary(Cluster::new(p));
    let (par_out, par_stats) = run_binary(Cluster::with_executor(
        p,
        Box::new(ParExecutor::with_threads(4)),
    ));
    assert_eq!(seq_out, par_out);
    assert_eq!(seq_stats, par_stats);
    // Skew-aware HyperCube.
    let tri = acyclic_joins::instancegen::skew::zipf_triangle(900, 1.1, 450, 78);
    let run_triangle = |mut cluster: Cluster| {
        let sizes: Vec<u64> = tri.db.relations.iter().map(|r| r.len() as u64).collect();
        let shares = worst_case_shares(&tri.query, &sizes, p);
        let in_size = tri.db.input_size() as u64;
        let out = {
            let mut net = cluster.net();
            let dist = distribute_db(&tri.db, p);
            let skew = detect_hypercube_skew(
                &mut net,
                &tri.query,
                &dist,
                &shares,
                8,
                in_size / (3 * p as u64),
            );
            hypercube_join_skew(&mut net, &tri.query, dist, &shares, &skew, 9)
        };
        let mut tuples = out.gather_free().tuples;
        tuples.sort_unstable();
        (tuples, cluster.stats().clone())
    };
    let (seq_out, seq_stats) = run_triangle(Cluster::new(p));
    let (par_out, par_stats) = run_triangle(Cluster::with_executor(
        p,
        Box::new(ParExecutor::with_threads(4)),
    ));
    assert_eq!(seq_out, par_out);
    assert_eq!(seq_stats, par_stats);
}
