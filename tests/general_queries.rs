//! Differential fuzz of the general-query pipeline: seeded random
//! connected hypergraphs — acyclic and cyclic — run through the full
//! engine on every backend, checked bit-for-bit against each other and
//! against the RAM oracle; random cyclic views maintained through update
//! streams; and property tests of the decomposition layer
//! ([`aj_relation::Ghd`] / [`aj_relation::FreeConnexGhd`]) and the local
//! WCOJ ([`aj_core::wcoj::generic_join`]).
//!
//! This is the acceptance harness for the GHD tentpole: the servable query
//! space is no longer a catalogue of shapes but *any* connected join
//! query, so the tests sample that space instead of enumerating it.

use aj_core::dist::distribute_db;
use aj_core::engine::QueryEngine;
use aj_core::general;
use aj_core::local::{multiway_join, normalize, LocalRel};
use aj_core::wcoj::generic_join;
use aj_instancegen::{randquery, updates};
use aj_mpc::{Cluster, ParExecutor, Stats};
use aj_relation::delta::CountedSnapshot;
use aj_relation::{ram, Database, FreeConnexGhd, Ghd, Query, QueryBuilder, Tuple};
use proptest::prelude::*;

const P: usize = 4;

/// A named recipe for building a fresh cluster on one backend.
type Backend = (&'static str, Box<dyn Fn() -> Cluster>);

/// The three execution backends the fuzz drives. (The transport × fault
/// matrix lives in `conformance.rs`; here the channel transport represents
/// the wire path.)
fn backends() -> Vec<Backend> {
    vec![
        ("seq", Box::new(|| Cluster::new(P))),
        (
            "par",
            Box::new(|| Cluster::with_executor(P, Box::new(ParExecutor::with_threads(4)))),
        ),
        ("net-chan", Box::new(|| Cluster::new_net(P))),
    ]
}

/// The RAM-model reference answer, in the engine's output layout
/// (occurring attributes, ascending).
fn oracle(q: &Query, db: &Database) -> Vec<Tuple> {
    let mut t = if q.is_acyclic() {
        ram::join(q, db).1
    } else {
        ram::naive_join(q, db)
    };
    t.sort_unstable();
    t
}

/// The oracle's counted materialization: every set-semantics output tuple
/// with count 1, sorted.
fn oracle_snapshot(q: &Query, db: &Database) -> CountedSnapshot {
    let mut tuples = ram::naive_join(q, db);
    tuples.sort_unstable();
    tuples.dedup();
    tuples.into_iter().map(|t| (t, 1)).collect()
}

/// Run `q` on `db` through a full engine on one backend; return the sorted
/// output and the cumulative cluster stats.
fn engine_run(make: &dyn Fn() -> Cluster, q: &Query, db: &Database) -> (Vec<Tuple>, Stats) {
    let mut engine = QueryEngine::with_cluster(make(), Default::default());
    let outcome = engine.run(q, db);
    let mut tuples = outcome.output.gather_free().tuples;
    tuples.sort_unstable();
    (tuples, engine.stats().clone())
}

/// The headline fuzz: 100 seeded random connected queries (trees, cycles,
/// cliques, thetas, with random attachments), alternating uniform and Zipf
/// instances, each run on every backend. Outputs and `Stats` must be
/// bit-identical across backends and equal to the RAM oracle.
#[test]
fn hundred_random_queries_are_bit_identical_across_backends() {
    for seed in 0u64..100 {
        let q = randquery::random_connected_query(seed);
        let db = if seed % 2 == 0 {
            randquery::uniform_instance(&q, 24, 6, seed ^ 0xdb)
        } else {
            randquery::zipf_instance(&q, 24, 8, 1.2, seed ^ 0xdb)
        };
        let want = oracle(&q, &db);
        let mut reference: Option<(Vec<Tuple>, Stats)> = None;
        for (backend, make) in backends() {
            let (tuples, stats) = engine_run(make.as_ref(), &q, &db);
            assert_eq!(tuples, want, "seed {seed}/{backend}: wrong answer for {q}");
            match &reference {
                None => reference = Some((tuples, stats)),
                Some((_, ref_stats)) => {
                    assert_eq!(&stats, ref_stats, "seed {seed}/{backend}: stats differ");
                }
            }
        }
    }
}

/// Random **cyclic** views under maintenance: register on each backend,
/// apply a seeded update stream, and require the counted snapshot to equal
/// the oracle's after *every* batch — whatever plan and maintenance
/// strategy the engine picks per shape and per batch.
#[test]
fn random_cyclic_views_converge_after_every_batch() {
    let mut tested = 0u32;
    let mut seed = 0u64;
    while tested < 8 {
        seed += 1;
        let q = randquery::random_connected_query(seed);
        if q.is_acyclic() {
            continue;
        }
        tested += 1;
        let db = randquery::uniform_instance(&q, 24, 6, seed ^ 0x5eed);
        let mut mirror0 = db.clone();
        mirror0.dedup_all();
        let batches = updates::update_stream(&q, &mirror0, 4, 0.05, 0.0, seed ^ 0xabc);
        for (backend, make) in backends() {
            let mut engine = QueryEngine::with_cluster(make(), Default::default());
            let view = engine.register_view(&q, &db);
            let mut mirror = mirror0.clone();
            assert_eq!(
                engine.view(view).snapshot(),
                oracle_snapshot(&q, &mirror),
                "seed {seed}/{backend}: registration diverged for {q}"
            );
            for (i, batch) in batches.iter().enumerate() {
                engine.apply_update(view, batch);
                batch.apply_to(&mut mirror);
                assert_eq!(
                    engine.view(view).snapshot(),
                    oracle_snapshot(&q, &mirror),
                    "seed {seed}/{backend}: batch {i} diverged for {q}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every random acyclic query admits a width-1 free-connex GHD for the
    /// full output, and for any single edge's attribute set (both are
    /// always free-connex); the witness decomposition validates.
    #[test]
    fn free_connex_ghd_builds_on_random_acyclic(m in 1usize..6, seed in 0u64..5000) {
        let q = aj_instancegen::random::random_acyclic_query(m, seed);
        let full: Vec<usize> = (0..q.n_attrs()).collect();
        let g = FreeConnexGhd::build(&q, &full);
        prop_assert!(g.is_some(), "full output must be free-connex for {q}");
        prop_assert!(g.unwrap().validate(&q));
        let e0 = q.edge(0).attrs.clone();
        let g0 = FreeConnexGhd::build(&q, &e0);
        prop_assert!(g0.is_some(), "an edge's own attrs must be free-connex for {q}");
        prop_assert!(g0.unwrap().validate(&q));
    }

    /// `Ghd::build` succeeds on every random connected query, satisfies
    /// coherence / coverage / partition (via `validate`), and evaluating
    /// the query through its bag tree matches the RAM oracle.
    #[test]
    fn ghd_validates_and_bag_evaluation_matches_oracle(seed in 0u64..2000) {
        let q = randquery::random_connected_query(seed);
        let ghd = Ghd::build(&q).expect("generated queries are connected");
        prop_assert!(ghd.validate(&q), "invariants violated for {}", q);
        if q.is_acyclic() {
            prop_assert_eq!(ghd.width(), 1);
            prop_assert_eq!(ghd.n_bags(), q.n_edges());
        } else {
            prop_assert!(ghd.width() >= 2, "a cyclic query needs a multi-edge bag: {}", q);
        }
        let db = randquery::uniform_instance(&q, 18, 5, seed ^ 0x77);
        let mut want = ram::naive_join(&q, &db);
        want.sort_unstable();
        let mut cluster = Cluster::new(P);
        let out = {
            let mut net = cluster.net();
            let dist = distribute_db(&db, P);
            let mut s = seed.wrapping_mul(2) | 1;
            general::solve_with(&mut net, &q, &ghd, dist, &mut s)
        };
        let mut got = out.gather_free().tuples;
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// The cardinality-guided local WCOJ agrees with the binary-join
    /// cascade (`multiway_join` + column normalization) on every random
    /// connected query under set semantics.
    #[test]
    fn generic_join_matches_binary_cascade(seed in 0u64..3000) {
        let q = randquery::random_connected_query(seed);
        let db = randquery::uniform_instance(&q, 12, 4, seed ^ 0x99);
        let rels: Vec<LocalRel> = q
            .edges()
            .iter()
            .zip(&db.relations)
            .map(|(e, r)| LocalRel {
                attrs: e.attrs.clone(),
                tuples: r.tuples.clone(),
            })
            .collect();
        let (ga, mut gt) = generic_join(&rels);
        let (ma, mt) = multiway_join(&rels);
        let (ma, mut mt) = normalize(&ma, mt);
        prop_assert_eq!(ga, ma);
        gt.sort_unstable();
        gt.dedup();
        mt.sort_unstable();
        mt.dedup();
        prop_assert_eq!(gt, mt);
    }
}

/// Duplicate-edge regression shapes: two relations over the *same*
/// attribute set (verbatim layout and reversed layout), acyclic and
/// cyclic. The instances differ between the twin relations, so a planner
/// or cache that conflates edges by attribute set — ambiguous join-tree
/// edge keys, a dropped semijoin in `reduce` — produces wrong answers, not
/// just wrong loads.
fn duplicate_edge_cases() -> Vec<(&'static str, Query, Database)> {
    let mut cases = Vec::new();

    // Acyclic: R1(A,B) ∥ R2(A,B) — verbatim duplicate — then a chain.
    let mut b = QueryBuilder::new();
    b.relation("R1", &["A", "B"]);
    b.relation("R2", &["A", "B"]);
    b.relation("R3", &["B", "C"]);
    let q = b.build();
    let rows = |k: u64, n: u64| -> Vec<Vec<u64>> {
        (0..n)
            .map(|i| vec![i % 5, (i * k + i / 10 + 1) % 5])
            .collect()
    };
    let mut db = aj_relation::database_from_rows(&q, &[rows(2, 20), rows(3, 20), rows(4, 20)]);
    db.dedup_all();
    cases.push(("dup-acyclic", q, db));

    // Same attribute set under a *reversed* layout: R2's columns are (B,A).
    let mut b = QueryBuilder::new();
    b.relation("R1", &["A", "B"]);
    b.relation("R2", &["B", "A"]);
    b.relation("R3", &["B", "C"]);
    let q = b.build();
    let mut db = aj_relation::database_from_rows(&q, &[rows(2, 20), rows(5, 20), rows(4, 20)]);
    db.dedup_all();
    cases.push(("dup-reversed", q, db));

    // Cyclic: a triangle with one side doubled.
    let mut b = QueryBuilder::new();
    b.relation("R1", &["A", "B"]);
    b.relation("R2", &["A", "B"]);
    b.relation("R3", &["B", "C"]);
    b.relation("R4", &["C", "A"]);
    let q = b.build();
    let mut db =
        aj_relation::database_from_rows(&q, &[rows(2, 24), rows(3, 24), rows(4, 24), rows(6, 24)]);
    db.dedup_all();
    cases.push(("dup-cyclic", q, db));

    cases
}

/// Duplicate-edge regression: every duplicate-edge shape executes and
/// maintains as a view on every backend, bit-identical to the RAM oracle
/// — the twin relations' tuples both constrain the join (intersection
/// semantics), and the tree/grid/bag caches never conflate the twins.
#[test]
fn duplicate_edge_queries_serve_and_maintain_exactly() {
    for (label, q, db) in duplicate_edge_cases() {
        let want = oracle(&q, &db);
        assert!(!want.is_empty(), "{label}: degenerate instance");
        // Non-vacuity: with the twin relaxed to the full 5×5 relation the
        // output must grow, i.e. the duplicate genuinely constrains the
        // join — a cache that conflates the twins would not be caught
        // otherwise.
        let mut relaxed = db.clone();
        relaxed.relations[1].tuples = (0..25u64).map(|v| Tuple::from([v / 5, v % 5])).collect();
        assert!(
            oracle(&q, &relaxed).len() > want.len(),
            "{label}: the duplicate edge does not constrain the join"
        );
        let mut mirror0 = db.clone();
        mirror0.dedup_all();
        let batches = updates::update_stream(&q, &mirror0, 3, 0.06, 0.0, 0xd0b);
        let mut reference: Option<Stats> = None;
        for (backend, make) in backends() {
            let (tuples, stats) = engine_run(make.as_ref(), &q, &db);
            assert_eq!(tuples, want, "{label}/{backend}: wrong answer");
            match &reference {
                None => reference = Some(stats),
                Some(ref_stats) => {
                    assert_eq!(&stats, ref_stats, "{label}/{backend}: stats differ");
                }
            }
            let mut engine = QueryEngine::with_cluster(make(), Default::default());
            let view = engine.register_view(&q, &db);
            let mut mirror = mirror0.clone();
            assert_eq!(
                engine.view(view).snapshot(),
                oracle_snapshot(&q, &mirror),
                "{label}/{backend}: registration diverged"
            );
            for (i, batch) in batches.iter().enumerate() {
                engine.apply_update(view, batch);
                batch.apply_to(&mut mirror);
                assert_eq!(
                    engine.view(view).snapshot(),
                    oracle_snapshot(&q, &mirror),
                    "{label}/{backend}: batch {i} diverged"
                );
            }
        }
    }
}

/// The two named acceptance shapes of the tentpole.
fn acceptance_cases() -> Vec<(&'static str, Query, Database)> {
    let mut b = QueryBuilder::new();
    b.relation("R1", &["A", "B"]);
    b.relation("R2", &["B", "C"]);
    b.relation("R3", &["C", "D"]);
    b.relation("R4", &["D", "A"]);
    let cycle4 = b.build();
    let cycle4_db = randquery::uniform_instance(&cycle4, 30, 8, 0x4c);

    let mut b = QueryBuilder::new();
    for (i, (x, y)) in [
        ("A", "B"),
        ("A", "C"),
        ("A", "D"),
        ("B", "C"),
        ("B", "D"),
        ("C", "D"),
    ]
    .iter()
    .enumerate()
    {
        b.relation(&format!("E{i}"), &[x, y]);
    }
    let k4 = b.build();
    let k4_db = randquery::uniform_instance(&k4, 26, 6, 0x44);

    vec![("4-cycle", cycle4, cycle4_db), ("K4", k4, k4_db)]
}

/// The ISSUE's acceptance criterion, verbatim: a 4-cycle and a K4 execute
/// *and* register as incrementally-maintained views through `QueryEngine`
/// on all three backends, bit-identical to the RAM oracle throughout.
#[test]
fn four_cycle_and_k4_serve_on_every_backend() {
    for (label, q, db) in acceptance_cases() {
        let want = oracle(&q, &db);
        assert!(!want.is_empty(), "{label}: degenerate acceptance instance");
        let mut mirror0 = db.clone();
        mirror0.dedup_all();
        let batches = updates::update_stream(&q, &mirror0, 3, 0.05, 0.0, 0x4c4);
        let mut reference: Option<Stats> = None;
        for (backend, make) in backends() {
            let (tuples, stats) = engine_run(make.as_ref(), &q, &db);
            assert_eq!(tuples, want, "{label}/{backend}: wrong answer");
            match &reference {
                None => reference = Some(stats),
                Some(ref_stats) => {
                    assert_eq!(&stats, ref_stats, "{label}/{backend}: stats differ");
                }
            }
            let mut engine = QueryEngine::with_cluster(make(), Default::default());
            let view = engine.register_view(&q, &db);
            let mut mirror = mirror0.clone();
            assert_eq!(
                engine.view(view).snapshot(),
                oracle_snapshot(&q, &mirror),
                "{label}/{backend}: registration diverged"
            );
            for (i, batch) in batches.iter().enumerate() {
                engine.apply_update(view, batch);
                batch.apply_to(&mut mirror);
                assert_eq!(
                    engine.view(view).snapshot(),
                    oracle_snapshot(&q, &mirror),
                    "{label}/{backend}: batch {i} diverged"
                );
            }
        }
    }
}
