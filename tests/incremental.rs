//! Differential tests of the incremental-maintenance subsystem
//! (`aj_core::delta`): for every view shape, applying a stream of random
//! signed batches must leave a counted materialization **bit-identical** to
//! a full recompute on the final base state — on both executors — and the
//! maintained skew profiles must track updates and invalidate on rebuild.

use aj_core::engine::QueryEngine;
use aj_core::planner::MaintenanceChoice;
use aj_mpc::Cluster;
use aj_relation::delta::{CountedSnapshot, UpdateBatch};
use aj_relation::{ram, Database, Query, Tuple};

/// The RAM-model oracle's counted materialization of `q` on `db`: every
/// output tuple of the set-semantics join with count 1, sorted.
fn oracle_snapshot(q: &Query, db: &Database) -> CountedSnapshot {
    let mut tuples = ram::naive_join(q, db);
    tuples.sort_unstable();
    tuples.dedup();
    tuples.into_iter().map(|t| (t, 1)).collect()
}

/// Every registered shape: (label, query, database).
fn shapes() -> Vec<(&'static str, Query, Database)> {
    let mut cases = Vec::new();

    // Binary join (tall-flat).
    let mut b = aj_relation::QueryBuilder::new();
    b.relation("R1", &["A", "B"]);
    b.relation("R2", &["B", "C"]);
    let q = b.build();
    let db = aj_relation::database_from_rows(
        &q,
        &[
            (0..60).map(|i| vec![i, i % 7]).collect(),
            (0..45).map(|i| vec![i % 7, 1000 + i]).collect(),
        ],
    );
    cases.push(("binary", q, db));

    // Line-3 (acyclic, Theorem-7 territory) — a Figure-3 hard instance.
    let inst = aj_instancegen::fig3::one_sided(48, 48 * 6);
    cases.push(("line3", inst.query, inst.db));

    // Star (r-hierarchical).
    let q = aj_instancegen::shapes::star_query(3);
    let mut db = aj_instancegen::random::random_instance(&q, 60, 9, 77);
    db.dedup_all();
    cases.push(("star3", q, db));

    // Triangle (cyclic → delta-HyperCube).
    let inst = aj_instancegen::fig6::generate(40, 90, 5);
    cases.push(("triangle", inst.query, inst.db));

    // Triangle + 6-path appendage (cyclic → GHD bag caches).
    let (q, db) = ghd_shape();
    cases.push(("ghd", q, db));

    cases
}

/// A triangle with a 6-path tail hanging off attribute `C`: the cyclic
/// cost model prices the GHD bag route below whole-query HyperCube, so a
/// registered view takes the `ViewCache::Bags` path.
fn ghd_shape() -> (Query, Database) {
    let mut b = aj_relation::QueryBuilder::new();
    b.relation("R1", &["A", "B"]);
    b.relation("R2", &["B", "C"]);
    b.relation("R3", &["C", "A"]);
    for i in 0..6 {
        b.relation(
            &format!("T{i}"),
            &[&format!("X{i}"), &format!("X{}", i + 1)],
        );
    }
    b.relation("T6", &["C", "X0"]);
    let q = b.build();
    // Two images per key (branching 2, not a function graph): the join
    // output stays comfortably non-empty under 5% update batches.
    let rows = |k: u64| -> Vec<Vec<u64>> {
        (0..24u64)
            .map(|i| vec![i % 6, (i * k + i / 12 + 1) % 6])
            .collect()
    };
    let mut db = aj_relation::database_from_rows(
        &q,
        &(0..q.n_edges())
            .map(|e| rows(e as u64 + 2))
            .collect::<Vec<_>>(),
    );
    db.dedup_all();
    (q, db)
}

/// The GHD shape really registers through the bag caches (not a silent
/// fall-back to whole-query delta-HyperCube), and the update stream
/// exercises the lifted bag-delta maintenance path, not just rebuilds.
#[test]
fn ghd_planned_view_maintains_through_bag_caches() {
    let (q, db) = ghd_shape();
    let mut engine = QueryEngine::new(8);
    let view = engine.register_view(&q, &db);
    assert_eq!(
        engine.view(view).plan(),
        aj_core::planner::Plan::Ghd,
        "the appendage shape must price to the GHD plan"
    );
    let mut mirror = db.clone();
    mirror.dedup_all();
    assert!(
        !engine.view(view).snapshot().is_empty(),
        "the GHD shape must have a non-empty output"
    );
    // One small batch per relation, each touching exactly one relation:
    // single-relation deltas price to the maintenance pass, covering both
    // bag-delta routes — the grid route (triangle edges, a multi-edge bag)
    // and the free permutation route (path edges, single-edge bags).
    for e in 0..q.n_edges() {
        let mut batch = UpdateBatch::empty(q.n_edges());
        batch.delete(e, mirror.relations[e].tuples[0].clone());
        let fresh = (0..36u64)
            .map(|v| Tuple::from([v / 6, v % 6]))
            .find(|t| !mirror.relations[e].tuples.contains(t))
            .expect("a 24-row relation leaves free pairs in a 6x6 domain");
        batch.insert(e, fresh);
        let outcome = engine.apply_update(view, &batch);
        batch.apply_to(&mut mirror);
        assert_eq!(
            outcome.strategy,
            MaintenanceChoice::Maintain,
            "ghd: relation {e} batch must maintain"
        );
        assert_eq!(
            engine.view(view).snapshot(),
            oracle_snapshot(&q, &mirror),
            "ghd: relation {e} bag-delta pass diverged from the oracle"
        );
    }
    // A mixed stream (whatever the planner picks per batch) reconverges too.
    let batches = aj_instancegen::updates::update_stream(&q, &mirror, 3, 0.05, 0.0, 0x6d9);
    for (i, batch) in batches.iter().enumerate() {
        let outcome = engine.apply_update(view, batch);
        batch.apply_to(&mut mirror);
        assert_eq!(
            engine.view(view).snapshot(),
            oracle_snapshot(&q, &mirror),
            "ghd: batch {i} snapshot (strategy {})",
            outcome.strategy
        );
    }
}

/// Drive one engine through registration + a generated update stream;
/// assert the snapshot matches the oracle after every batch, and that a
/// fresh registration on the final state is bit-identical.
fn drive(
    label: &str,
    q: &Query,
    db: &Database,
    parallel: bool,
    zipf_s: f64,
) -> (CountedSnapshot, Vec<aj_mpc::EpochStats>) {
    let mut engine = if parallel {
        QueryEngine::new_parallel(8)
    } else {
        QueryEngine::new(8)
    };
    let view = engine.register_view(q, db);
    let mut mirror = db.clone();
    mirror.dedup_all();
    assert_eq!(
        engine.view(view).snapshot(),
        oracle_snapshot(q, &mirror),
        "{label}: registration snapshot"
    );
    let batches = aj_instancegen::updates::update_stream(q, &mirror, 4, 0.05, zipf_s, 0xfeed);
    let mut epochs = Vec::new();
    for (i, batch) in batches.iter().enumerate() {
        let outcome = engine.apply_update(view, batch);
        batch.apply_to(&mut mirror);
        assert_eq!(
            engine.view(view).snapshot(),
            oracle_snapshot(q, &mirror),
            "{label}: batch {i} snapshot (strategy {})",
            outcome.strategy
        );
        assert_eq!(outcome.out_size, engine.view(view).snapshot().len() as u64);
        epochs.push(outcome.maintenance);
    }
    // Bit-identical to a full recompute on the final state.
    let mut fresh = QueryEngine::new(8);
    let fresh_view = fresh.register_view(q, &mirror);
    assert_eq!(
        engine.view(view).snapshot(),
        fresh.view(fresh_view).snapshot(),
        "{label}: maintained ≠ recomputed on the final state"
    );
    (engine.view(view).snapshot(), epochs)
}

/// The acceptance differential: every shape, uniform update stream, N
/// batches, maintained == recomputed, and the parallel executor reproduces
/// the sequential engine's snapshots and per-batch epochs bit for bit.
#[test]
fn maintained_views_match_recompute_on_every_shape() {
    for (label, q, db) in shapes() {
        let (seq_snap, seq_epochs) = drive(label, &q, &db, false, 0.0);
        let (par_snap, par_epochs) = drive(label, &q, &db, true, 0.0);
        assert_eq!(seq_snap, par_snap, "{label}: executor snapshots differ");
        assert_eq!(seq_epochs, par_epochs, "{label}: executor epochs differ");
    }
}

/// Zipf-skewed update streams hammer the hot keys; counts must stay exact.
#[test]
fn skewed_update_streams_stay_exact() {
    for (label, q, db) in shapes() {
        drive(label, &q, &db, false, 1.1);
    }
}

/// A batch the size of the instance prices above the closed-form recompute:
/// the planner must fall back to a rebuild, and the result must still match
/// the oracle (the cost-based fall-back, not a hardcoded threshold).
#[test]
fn oversized_batch_triggers_cost_based_recompute() {
    let (_, q, db) = shapes().remove(1); // line3
    let mut engine = QueryEngine::new(8);
    let view = engine.register_view(&q, &db);
    let mut mirror = db.clone();
    mirror.dedup_all();
    // Replace essentially the whole instance, twice over (fraction 1.0
    // deletes/inserts ≈ IN/2 per relation each batch; churn accumulates).
    let batches = aj_instancegen::updates::update_stream(&q, &mirror, 3, 1.0, 0.0, 0xdead);
    let mut saw_recompute = false;
    for batch in &batches {
        let outcome = engine.apply_update(view, batch);
        batch.apply_to(&mut mirror);
        saw_recompute |= outcome.strategy == MaintenanceChoice::Recompute;
        assert_eq!(engine.view(view).snapshot(), oracle_snapshot(&q, &mirror));
    }
    assert!(
        saw_recompute,
        "instance-sized batches must price above maintenance"
    );
    assert!(engine.view(view).rebuilds() > 0);
    // After a rebuild the churn counter resets.
    assert!(engine.view(view).cum_delta() < mirror.input_size() as u64);
}

/// Tiny batches must always maintain (the delta pass prices orders of
/// magnitude below recompute), and the maintenance epochs must be far
/// cheaper than the registration build.
#[test]
fn small_batches_maintain_and_stay_cheap() {
    let (_, q, db) = shapes().remove(1); // line3
    let mut engine = QueryEngine::new(8);
    let view = engine.register_view(&q, &db);
    let build_units = engine.view(view).registration().total_messages;
    let mut mirror = db.clone();
    mirror.dedup_all();
    let batches = aj_instancegen::updates::update_stream(&q, &mirror, 3, 0.01, 0.0, 7);
    for batch in &batches {
        let outcome = engine.apply_update(view, batch);
        batch.apply_to(&mut mirror);
        assert_eq!(outcome.strategy, MaintenanceChoice::Maintain);
        assert!(
            2 * outcome.maintenance.total_messages <= build_units,
            "1% batch cost {} vs build {build_units}",
            outcome.maintenance.total_messages
        );
    }
}

/// Multi-relation batches must respect the `ΔR_i ⋈ R_{<i}^new ⋈ R_{>i}^old`
/// decomposition: a batch that moves a tuple *between* joinable positions
/// of different relations in one call must land on the oracle state.
#[test]
fn batches_touching_every_relation_at_once() {
    let inst = aj_instancegen::fig6::generate(30, 60, 11);
    let (q, db) = (inst.query, inst.db);
    let mut engine = QueryEngine::new(4);
    let view = engine.register_view(&q, &db);
    let mut mirror = db.clone();
    mirror.dedup_all();
    let mut batch = UpdateBatch::empty(q.n_edges());
    for (e, rel) in mirror.relations.iter().enumerate() {
        // Delete the first two tuples of each relation, insert fresh hubs.
        for t in rel.tuples.iter().take(2) {
            batch.delete(e, t.clone());
        }
        batch.insert(e, Tuple::from([0, e as u64]));
        batch.insert(e, Tuple::from([e as u64, 0]));
    }
    let outcome = engine.apply_update(view, &batch);
    batch.apply_to(&mut mirror);
    assert_eq!(outcome.strategy, MaintenanceChoice::Maintain);
    assert_eq!(engine.view(view).snapshot(), oracle_snapshot(&q, &mirror));
}

/// A delete followed by a re-insert of the same tuple (same batch and
/// across batches) must round-trip the counts exactly.
#[test]
fn delete_reinsert_round_trip() {
    let mut b = aj_relation::QueryBuilder::new();
    b.relation("R1", &["A", "B"]);
    b.relation("R2", &["B", "C"]);
    let q = b.build();
    let db = aj_relation::database_from_rows(
        &q,
        &[
            (0..20).map(|i| vec![i, i % 3]).collect(),
            (0..12).map(|i| vec![i % 3, 500 + i]).collect(),
        ],
    );
    let mut engine = QueryEngine::new(4);
    let view = engine.register_view(&q, &db);
    let before = engine.view(view).snapshot();
    // Same batch: delete + re-insert is a no-op.
    let mut batch = UpdateBatch::empty(2);
    batch.delete(0, Tuple::from([0, 0]));
    batch.insert(0, Tuple::from([0, 0]));
    engine.apply_update(view, &batch);
    assert_eq!(engine.view(view).snapshot(), before);
    // Across batches: remove, verify shrink, restore, verify round-trip.
    let mut del = UpdateBatch::empty(2);
    del.delete(0, Tuple::from([0, 0]));
    engine.apply_update(view, &del);
    assert!(engine.view(view).snapshot().len() < before.len());
    let mut ins = UpdateBatch::empty(2);
    ins.insert(0, Tuple::from([0, 0]));
    engine.apply_update(view, &ins);
    assert_eq!(engine.view(view).snapshot(), before);
}

/// Satellite: a join key whose frequency crosses the heavy-hitter threshold
/// mid-stream must become visible in the *maintained* profile without any
/// re-detection, and a rebuild must re-detect (invalidate) the profile.
#[test]
fn view_skew_profile_crosses_threshold_and_invalidates() {
    let p = 8usize;
    let mut b = aj_relation::QueryBuilder::new();
    b.relation("R1", &["A", "B"]);
    b.relation("R2", &["B", "C"]);
    let q = b.build();
    // 256 light tuples per side, key domain 64: nobody near IN/p = 64.
    let db = aj_relation::database_from_rows(
        &q,
        &[
            (0..256).map(|i| vec![i, i % 64]).collect(),
            (0..256).map(|i| vec![i % 64, 4000 + i]).collect(),
        ],
    );
    let mut engine = QueryEngine::with_cluster(Cluster::new(p), Default::default());
    let view = engine.register_view(&q, &db);
    let skew = engine.view(view).skew().expect("binary view is profiled");
    assert!(
        !skew.significant(p).left.is_heavy(&[7]),
        "key 7 must start light"
    );
    // Stream inserts onto key B = 7 on the left side until it crosses the
    // fair share of the (growing) relation.
    let mut batch = UpdateBatch::empty(2);
    for i in 0..80u64 {
        batch.insert(0, Tuple::from([10_000 + i, 7]));
    }
    let outcome = engine.apply_update(view, &batch);
    assert_eq!(outcome.strategy, MaintenanceChoice::Maintain);
    let skew = engine.view(view).skew().expect("still profiled");
    assert!(
        skew.significant(p).left.is_heavy(&[7]),
        "key 7 crossed the threshold mid-stream: {skew:?}"
    );
    assert_eq!(skew.left.total(), 256 + 80);
    // Deleting the hot tuples drops the maintained bound back below the
    // threshold.
    let mut back = UpdateBatch::empty(2);
    for i in 0..80u64 {
        back.delete(0, Tuple::from([10_000 + i, 7]));
    }
    engine.apply_update(view, &back);
    let skew = engine.view(view).skew().expect("still profiled");
    assert!(!skew.significant(p).left.is_heavy(&[7]));
    // Invalidation on recompute: force a rebuild with an instance-sized
    // batch and check the profile was re-detected from the actual base
    // (fresh exact nominations, not the maintained lower bounds).
    let rebuilds_before = engine.view(view).rebuilds();
    let mut mirror = engine.view(view).base().clone();
    let huge = aj_instancegen::updates::update_stream(&q, &mirror, 1, 1.0, 0.0, 3).remove(0);
    let outcome = engine.apply_update(view, &huge);
    huge.apply_to(&mut mirror);
    assert_eq!(outcome.strategy, MaintenanceChoice::Recompute);
    assert!(engine.view(view).rebuilds() > rebuilds_before);
    let skew = engine.view(view).skew().expect("re-detected");
    assert_eq!(
        skew.left.total(),
        mirror.relations[0].len() as u64,
        "rebuild re-detects from the current base"
    );
}

/// Per-view epochs attribute maintenance load: registration and every batch
/// report their own interval, and the engine's cumulative stats cover them.
#[test]
fn view_epochs_attribute_maintenance_load() {
    let (_, q, db) = shapes().remove(0);
    let mut engine = QueryEngine::new(4);
    let view = engine.register_view(&q, &db);
    let reg = engine.view(view).registration().clone();
    assert!(reg.total_messages > 0 && reg.exchanges > 0);
    let mut mirror = db.clone();
    mirror.dedup_all();
    let batch = aj_instancegen::updates::update_stream(&q, &mirror, 1, 0.05, 0.0, 5).remove(0);
    let outcome = engine.apply_update(view, &batch);
    assert!(outcome.maintenance.total_messages > 0);
    // Registration + the batch are all the communication this engine did.
    assert_eq!(
        engine.stats().total_messages,
        reg.total_messages + outcome.maintenance.total_messages
    );
    assert_eq!(
        engine.stats().max_load,
        reg.max_load.max(outcome.maintenance.max_load)
    );
}

// ---------------------------------------------------------------------------
// Checkpoint / recovery satellites: the snapshot codec and `ViewCheckpoint`
// must round-trip losslessly, and restoring a checkpoint must land the view
// exactly where the oracle says the checkpointed state was.
// ---------------------------------------------------------------------------

use aj_core::ViewCheckpoint;
use aj_mpc::{Wire, WireReader};
use aj_relation::delta::{decode_snapshot, encode_snapshot};
use proptest::prelude::*;

/// Splitmix64 step: deterministic pseudo-random streams for the generators.
fn mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded snapshot of `n` entries with per-entry arity in `0..=max_arity`
/// (mixed widths in one snapshot — the codec is self-delimiting) and counts
/// spanning the full `u64` range on occasion.
fn random_snapshot(seed: u64, n: usize, max_arity: usize) -> CountedSnapshot {
    let mut s = seed ^ 0x5eed_cafe;
    (0..n)
        .map(|_| {
            let arity = (mix64(&mut s) as usize) % (max_arity + 1);
            let values: Vec<u64> = (0..arity).map(|_| mix64(&mut s)).collect();
            let count = mix64(&mut s) | 1; // positive, occasionally huge
            (Tuple::new(&values), count)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// `encode_snapshot` → `decode_snapshot` is the identity for every
    /// arity below, at, and above the inline tuple boundary (3), and the
    /// encoding is canonical: re-encoding yields the identical buffer.
    #[test]
    fn snapshot_codec_round_trips(seed in 0u64..10_000, n in 0usize..120, max_arity in 0usize..6) {
        let snap = random_snapshot(seed, n, max_arity);
        let words = encode_snapshot(&snap);
        let expect_len = 1 + snap.iter().map(|(t, _)| t.arity() + 2).sum::<usize>();
        prop_assert_eq!(words.len(), expect_len);
        prop_assert_eq!(decode_snapshot(&words), snap.clone());
        prop_assert_eq!(encode_snapshot(&snap), words);
    }
}

/// The empty snapshot is one word and survives the round trip.
#[test]
fn empty_snapshot_round_trips() {
    let snap: CountedSnapshot = Vec::new();
    let words = encode_snapshot(&snap);
    assert_eq!(words, vec![0]);
    assert_eq!(decode_snapshot(&words), snap);
}

/// A truncated snapshot buffer must fail loudly, not decode garbage.
#[test]
#[should_panic(expected = "snapshot buffer truncated")]
fn truncated_snapshot_buffer_panics() {
    let snap = random_snapshot(7, 20, 4);
    let words = encode_snapshot(&snap);
    decode_snapshot(&words[..words.len() - 1]);
}

/// Trailing words after the last entry must fail loudly too.
#[test]
#[should_panic(expected = "snapshot buffer has trailing words")]
fn trailing_snapshot_words_panic() {
    let mut words = encode_snapshot(&random_snapshot(9, 10, 3));
    words.push(42);
    decode_snapshot(&words);
}

/// For every view shape: advance a stream, checkpoint, diverge, then
/// restore from the checkpoint's **wire round-trip** — the view must land
/// bit-identically on the checkpointed (oracle-verified) state, and
/// replaying the tail from there must reconverge with the oracle.
#[test]
fn checkpoint_restore_matches_oracle_on_every_shape() {
    for (label, q, db) in shapes() {
        let mut engine = QueryEngine::new(8);
        let view = engine.register_view(&q, &db);
        let mut mirror = db.clone();
        mirror.dedup_all();
        let batches = aj_instancegen::updates::update_stream(&q, &mirror, 4, 0.05, 0.0, 0xabcd);
        for batch in &batches[..2] {
            engine.apply_update(view, batch);
            batch.apply_to(&mut mirror);
        }
        let ckpt = engine.checkpoint(view);
        let at_ckpt = engine.view(view).snapshot();
        assert_eq!(
            at_ckpt,
            oracle_snapshot(&q, &mirror),
            "{label}: checkpointed state is wrong before any recovery"
        );
        // Diverge past the checkpoint.
        for batch in &batches[2..] {
            engine.apply_update(view, batch);
        }
        assert_ne!(
            engine.view(view).snapshot(),
            at_ckpt,
            "{label}: stream tail must actually change the view"
        );
        // Serialize → deserialize → restore from the decoded copy: the wire
        // form carries everything restore needs.
        let mut words = Vec::new();
        ckpt.encode(&mut words);
        let decoded = ViewCheckpoint::decode(&mut WireReader::new(&words));
        assert_eq!(
            decoded.snapshot(),
            ckpt.snapshot(),
            "{label}: wire snapshot"
        );
        assert_eq!(decoded.base(), ckpt.base(), "{label}: wire base");
        assert_eq!(decoded.cum_delta(), ckpt.cum_delta());
        assert_eq!(decoded.rebuilds(), ckpt.rebuilds());
        engine.restore(view, &decoded);
        assert_eq!(
            engine.view(view).snapshot(),
            at_ckpt,
            "{label}: restore must be bit-identical to the checkpointed state"
        );
        // Replay the tail and reconverge.
        for batch in &batches[2..] {
            engine.apply_update(view, batch);
            batch.apply_to(&mut mirror);
        }
        assert_eq!(
            engine.view(view).snapshot(),
            oracle_snapshot(&q, &mirror),
            "{label}: replay after restore diverged from the oracle"
        );
    }
}

/// `recover` is restore + replay in one call: its report must account for
/// every pending batch and leave the view on the oracle state.
#[test]
fn recover_replays_pending_batches() {
    let (_, q, db) = shapes().remove(1); // line3
    let mut engine = QueryEngine::new(8);
    let view = engine.register_view(&q, &db);
    let mut mirror = db.clone();
    mirror.dedup_all();
    let batches = aj_instancegen::updates::update_stream(&q, &mirror, 3, 0.05, 0.0, 0xf00d);
    let ckpt = engine.checkpoint(view);
    // Simulate losing the first two batches to a crash mid-stream: the view
    // applied them, the checkpoint predates them.
    for batch in &batches[..2] {
        engine.apply_update(view, batch);
        batch.apply_to(&mut mirror);
    }
    let report = engine.recover(view, &ckpt, &batches[..2]);
    assert_eq!(report.replayed.len(), 2);
    assert_eq!(
        engine.view(view).snapshot(),
        oracle_snapshot(&q, &mirror),
        "recovery left the view off the oracle state"
    );
    // The engine keeps serving normally afterwards.
    let tail = &batches[2];
    engine.apply_update(view, tail);
    tail.apply_to(&mut mirror);
    assert_eq!(engine.view(view).snapshot(), oracle_snapshot(&q, &mirror));
}
