//! Load-shape assertions: the headline claims of the paper, checked as
//! inequalities on measured loads (constant factors are generous; the
//! *shapes* are what the paper predicts).

use acyclic_joins::core::dist::distribute_db;
use acyclic_joins::core::{acyclic, aggregate, bounds, line3, yannakakis};
use acyclic_joins::instancegen::{fig3, fig6};
use acyclic_joins::prelude::*;

fn measure(p: usize, f: impl FnOnce(&mut acyclic_joins::mpc::Net)) -> u64 {
    let mut cluster = Cluster::new(p);
    {
        let mut net = cluster.net();
        f(&mut net);
    }
    cluster.stats().max_load
}

/// Theorem 5 separation: on two-sided Figure-3 instances the line-3
/// algorithm beats every Yannakakis order, and the gap grows with OUT.
#[test]
fn theorem5_beats_yannakakis_with_growing_gap() {
    let p = 16;
    let mut gaps = Vec::new();
    for factor in [8u64, 64] {
        let inst = fig3::two_sided(512, 512 * factor);
        let ours = measure(p, |net| {
            let mut s = 3;
            line3::solve(net, &inst.query, distribute_db(&inst.db, p), &mut s);
        });
        let yan = measure(p, |net| {
            let mut s = 3;
            yannakakis::yannakakis(net, &inst.query, distribute_db(&inst.db, p), None, &mut s);
        });
        assert!(
            ours < yan,
            "line3 {ours} !< yannakakis {yan} at factor {factor}"
        );
        gaps.push(yan as f64 / ours as f64);
    }
    assert!(
        gaps[1] > gaps[0],
        "gap must grow with OUT: {gaps:?} (≈ √(OUT/IN) predicted)"
    );
}

/// Theorem 7 load stays within a constant of IN/p + √(IN·OUT)/p across the
/// OUT sweep.
#[test]
fn theorem7_tracks_bound() {
    let p = 16;
    for factor in [4u64, 32] {
        let inst = fig3::two_sided(512, 512 * factor);
        let in_size = inst.db.input_size() as u64;
        let load = measure(p, |net| {
            let mut s = 3;
            acyclic::solve(net, &inst.query, distribute_db(&inst.db, p), &mut s);
        });
        let bound = bounds::acyclic_bound(in_size, inst.out, p);
        assert!(
            (load as f64) <= 8.0 * bound,
            "Thm7 load {load} exceeds 8×bound {bound} at factor {factor}"
        );
    }
}

/// Corollary 4: counting the output is linear-load even when OUT explodes.
#[test]
fn corollary4_output_size_linear_load() {
    let p = 8;
    let q = acyclic_joins::instancegen::line_query(3);
    let n = 512u64;
    // Full bipartite middle: OUT = n².
    let db = acyclic_joins::relation::database_from_rows(
        &q,
        &[
            (0..n).map(|i| vec![i, 0]).collect(),
            vec![vec![0, 0]],
            (0..n).map(|i| vec![0, i]).collect(),
        ],
    );
    let in_per_p = db.input_size() as u64 / p as u64;
    let mut cluster = Cluster::new(p);
    let out = {
        let mut net = cluster.net();
        let mut s = 5;
        aggregate::output_size(&mut net, &q, &distribute_db(&db, p), &mut s)
    };
    assert_eq!(out, n * n);
    assert!(
        cluster.stats().max_load <= 4 * in_per_p.max(p as u64),
        "counting load {} is not linear (IN/p = {in_per_p})",
        cluster.stats().max_load
    );
}

/// Section 7: the triangle's HyperCube load is flat in OUT (output
/// insensitive), unlike acyclic joins.
#[test]
fn triangle_load_is_output_insensitive() {
    let p = 27;
    let n = 729u64;
    let mut loads = Vec::new();
    for tau in [1u64, 27] {
        let inst = fig6::generate(n, n * tau, 3 + tau);
        let load = measure(p, |net| {
            acyclic_joins::core::triangle::solve(net, &inst.query, &inst.db, 7);
        });
        loads.push(load as f64);
    }
    // 27× more output, load within 2×.
    let ratio = loads[1] / loads[0];
    assert!(
        (0.3..3.0).contains(&ratio),
        "triangle load should be flat in OUT, got ratio {ratio} ({loads:?})"
    );
}

/// The MPC model sanity: more servers ⇒ (weakly) less load per server on a
/// balanced instance.
#[test]
fn load_decreases_with_p() {
    let inst = fig3::one_sided(512, 4096);
    let mut prev = u64::MAX;
    for p in [4usize, 16, 64] {
        let load = measure(p, |net| {
            let mut s = 3;
            acyclic::solve(net, &inst.query, distribute_db(&inst.db, p), &mut s);
        });
        assert!(
            load <= prev,
            "load should not grow with p: p={p} gave {load}, prev {prev}"
        );
        prev = load;
    }
}

/// The headline skew claim: on a Zipf(1.1) binary-join instance, the
/// skew-aware hybrid's measured max load is at most **half** the hash-only
/// path's. Detection runs in its own stats epoch (the engine's planning
/// phase), so the comparison is between the join rounds proper — and the
/// detection's own load is checked to stay below the join's.
#[test]
fn hybrid_routing_halves_hash_load_on_zipf() {
    use acyclic_joins::core::binary::{detect_join_skew, hash_join, hybrid_hash_join};
    let p = 32;
    let inst = acyclic_joins::instancegen::skew::zipf_binary(8_000, 1.1, 64, 0xbead + 2);
    let sides = || {
        (
            acyclic_joins::core::DistRelation::distribute(&inst.db.relations[0], p),
            acyclic_joins::core::DistRelation::distribute(&inst.db.relations[1], p),
        )
    };
    let hash_load = measure(p, |net| {
        let (left, right) = sides();
        let mut seed = 7;
        hash_join(net, left, right, &mut seed);
    });
    let mut cluster = Cluster::new(p);
    let (skew, detect_epoch) = {
        let skew = {
            let mut net = cluster.net();
            let (left, right) = sides();
            detect_join_skew(&mut net, &left, &right, 16).significant(p)
        };
        (skew, cluster.epoch())
    };
    assert!(skew.is_skewed(), "Zipf(1.1) must trip the detector");
    let hybrid_out = {
        let mut net = cluster.net();
        let (left, right) = sides();
        let mut seed = 7;
        hybrid_hash_join(&mut net, left, right, &skew, &mut seed)
    };
    let hybrid_load = cluster.epoch().max_load;
    assert!(
        2 * hybrid_load <= hash_load,
        "hybrid load {hybrid_load} must be at most half of hash-only {hash_load}"
    );
    assert!(
        detect_epoch.max_load < hybrid_load,
        "detection ({}) must be cheaper than the join ({hybrid_load})",
        detect_epoch.max_load
    );
    // Same join, same answer: the hash path's output count matches.
    let hash_out = {
        let mut c = Cluster::new(p);
        let out = {
            let mut net = c.net();
            let (left, right) = sides();
            let mut seed = 7;
            hash_join(&mut net, left, right, &mut seed)
        };
        out.total_len()
    };
    assert_eq!(hybrid_out.total_len(), hash_out);
}

/// Broadcast-style replicas of the hybrid routing are charged to the
/// receiving server's epoch exactly once: the epoch's total messages equal
/// the number of delivered rows (each replica is one unit at its receiver,
/// never double-counted), and `delta_since` over the same interval reports
/// the identical exact max.
#[test]
fn hybrid_replicas_charged_once_per_receiver() {
    use acyclic_joins::core::binary::{detect_join_skew, hybrid_hash_join};
    use acyclic_joins::relation::Tuple;
    let p = 4;
    // One heavy key with known degrees: a = b = 60, plus 20 light rows/side.
    let mut rows1: Vec<Tuple> = (0..60).map(|i| Tuple::from([i, 9])).collect();
    rows1.extend((0..20).map(|i| Tuple::from([100 + i, 10 + i % 10])));
    let mut rows2: Vec<Tuple> = (0..60).map(|i| Tuple::from([9, 500 + i])).collect();
    rows2.extend((0..20).map(|i| Tuple::from([10 + i % 10, 700 + i])));
    let left = acyclic_joins::relation::Relation::new(vec![0, 1], rows1);
    let right = acyclic_joins::relation::Relation::new(vec![1, 2], rows2);
    let mut cluster = Cluster::new(p);
    let skew = {
        let mut net = cluster.net();
        let l = acyclic_joins::core::DistRelation::distribute(&left, p);
        let r = acyclic_joins::core::DistRelation::distribute(&right, p);
        detect_join_skew(&mut net, &l, &r, 8).significant(p)
    };
    cluster.begin_epoch();
    let before = cluster.stats().clone();
    {
        let mut net = cluster.net();
        let l = acyclic_joins::core::DistRelation::distribute(&left, p);
        let r = acyclic_joins::core::DistRelation::distribute(&right, p);
        let mut seed = 3;
        hybrid_hash_join(&mut net, l, r, &skew, &mut seed);
    }
    let epoch = cluster.epoch();
    // Expected delivered rows: per side, heavy rows appear once per grid
    // replica, light rows exactly once. Reconstruct the replica count from
    // the profile the router used.
    let (a, b) = (
        skew.left.count_of(&[9]).expect("heavy on the left"),
        skew.right.count_of(&[9]).expect("heavy on the right"),
    );
    let load = acyclic_joins::relation::skew::target_cell_load(&skew, p);
    let (rows, cols) = acyclic_joins::relation::skew::grid_split(a, b, load);
    let expected = (60 * cols + 20) + (60 * rows + 20);
    assert_eq!(
        epoch.total_messages, expected,
        "every replica charged exactly once at its receiver"
    );
    // Epoch peaks sum to the same totals a delta over the interval reports.
    let delta = cluster.stats().delta_since(&before);
    assert_eq!(delta.total_messages, expected);
    assert_eq!(
        delta.max_load, epoch.max_load,
        "delta and epoch agree exactly"
    );
}

/// Instance-optimality (Theorem 3) vs output-optimality: on a skewed star
/// instance, the Theorem-3 load stays within a constant of L_instance.
#[test]
fn theorem3_instance_optimal_on_skew() {
    let p = 16;
    let q = acyclic_joins::instancegen::shapes::star_query(2);
    let n = 512u64;
    let mut rows1: Vec<Vec<u64>> = (0..n / 2).map(|i| vec![0, i]).collect();
    rows1.extend((0..n / 2).map(|i| vec![1 + i % 32, 10_000 + i]));
    let mut rows2: Vec<Vec<u64>> = (0..n / 2).map(|i| vec![0, 20_000 + i]).collect();
    rows2.extend((0..n / 2).map(|i| vec![1 + i % 32, 30_000 + i]));
    let db = acyclic_joins::relation::database_from_rows(&q, &[rows1, rows2]);
    let l_inst = db.input_size() as f64 / p as f64 + bounds::l_instance(&q, &db, p);
    let load = measure(p, |net| {
        let mut s = 3;
        acyclic_joins::core::hierarchical::solve(net, &q, distribute_db(&db, p), &mut s);
    });
    assert!(
        (load as f64) <= 10.0 * l_inst,
        "Thm3 load {load} far above instance bound {l_inst}"
    );
}
