//! Observability acceptance: the structured trace added by `aj_obs` must be
//! a pure function of the served requests — deterministic across repeated
//! runs and across execution backends — and strictly free when disabled:
//! a tracing-off engine records zero events and measures exactly the same
//! `Stats` as a tracing-on one. Exporters (Chrome trace-event JSON, flat
//! metrics, `QueryEngine::explain`) are pure functions of trace/outcome
//! content, so they re-render byte-identically after an encode/decode trip.
//!
//! Also home of the round-log regression test: a sustained query batch must
//! not grow the cluster's retained round log (the engine trims it after
//! every request — per-query attribution runs on epochs).

use acyclic_joins::core::engine::QueryEngine;
use acyclic_joins::instancegen::{line_query, shapes, updates};
use acyclic_joins::mpc::Cluster;
use acyclic_joins::obs::{chrome, metrics, Event, ObsConfig, RoundKind, Trace};
use acyclic_joins::prelude::*;
use proptest::prelude::*;

fn line3_db(q: &Query) -> Database {
    acyclic_joins::relation::database_from_rows(
        q,
        &[
            (0..12).map(|i| vec![i, i % 3]).collect(),
            (0..9).map(|i| vec![i % 3, i % 4]).collect(),
            (0..8).map(|i| vec![i % 4, i]).collect(),
        ],
    )
}

fn star_db(q: &Query) -> Database {
    acyclic_joins::relation::database_from_rows(
        q,
        &[
            (0..8).map(|i| vec![i % 3, i]).collect(),
            (0..6).map(|i| vec![i % 3, 100 + i]).collect(),
            (0..4).map(|i| vec![i % 3, 200 + i]).collect(),
        ],
    )
}

/// Satellite regression: a 1000-query batch on one engine keeps the
/// cluster's retained round log bounded — the engine trims it after every
/// request, so the log never covers more than one request's rounds even
/// under sustained traffic.
#[test]
fn thousand_query_batch_keeps_round_log_bounded() {
    let q1 = line_query(3);
    let db1 = line3_db(&q1);
    let q2 = shapes::star_query(3);
    let db2 = star_db(&q2);
    let mut engine = QueryEngine::new(4);
    let mut peak = 0usize;
    for i in 0..1000 {
        if i % 2 == 0 {
            engine.run(&q1, &db1);
        } else {
            engine.run(&q2, &db2);
        }
        peak = peak.max(engine.stats().round_maxima().len());
    }
    assert_eq!(engine.served(), 1000);
    // Trimmed after every request: the retained log is empty between
    // requests, and cumulative counters keep advancing past it.
    assert_eq!(engine.stats().round_maxima().len(), 0);
    assert_eq!(engine.stats().round_log_start(), engine.stats().exchanges);
    // Mid-run the log never held more than one request's rounds.
    assert!(peak <= 64, "round log grew to {peak} entries");
    assert!(engine.stats().exchanges >= 1000);
}

/// Tracing off is strictly free: no trace exists, and the measured `Stats`
/// of an identical workload are bit-identical with tracing on and off.
#[test]
fn tracing_off_records_nothing_and_loads_are_unchanged() {
    let q = line_query(3);
    let db = line3_db(&q);
    let drive = |traced: bool| {
        let mut engine = QueryEngine::new(4);
        if traced {
            engine.enable_tracing(ObsConfig::default());
        }
        let outcome = engine.run(&q, &db);
        let events = engine.take_trace().map(|t| t.logical_events());
        (outcome.execution, engine.stats().clone(), events)
    };
    let (exec_off, stats_off, events_off) = drive(false);
    let (exec_on, stats_on, events_on) = drive(true);
    assert!(events_off.is_none(), "tracing off must record nothing");
    assert!(!events_on.as_ref().unwrap().is_empty());
    assert_eq!(exec_off, exec_on, "tracing perturbed the execution epoch");
    assert_eq!(stats_off, stats_on, "tracing perturbed the measured loads");
}

/// The trace is a pure function of the run: two identical request streams
/// produce bit-identical traces (entries, drop counters, encoded bytes).
#[test]
fn identical_runs_produce_bit_identical_traces() {
    let drive = || {
        let q = line_query(3);
        let db = line3_db(&q);
        let mut engine = QueryEngine::new(4);
        engine.enable_tracing(ObsConfig::default());
        engine.run(&q, &db);
        engine.run(&q, &db);
        engine.take_trace().expect("tracing was enabled")
    };
    let (a, b) = (drive(), drive());
    assert_eq!(a, b);
    assert_eq!(a.encode(), b.encode());
}

/// Chrome trace-event export of a real engine trace: decoding the flat-u64
/// buffer and re-rendering reproduces the JSON byte for byte, and the
/// metrics dump is deterministic the same way.
#[test]
fn exporters_survive_an_encode_decode_trip_byte_identically() {
    let q = shapes::star_query(3);
    let db = star_db(&q);
    let mut engine = QueryEngine::new(4);
    engine.enable_tracing(ObsConfig::default());
    engine.run(&q, &db);
    let trace = engine.take_trace().expect("tracing was enabled");
    let decoded = Trace::decode(&trace.encode()).expect("self-encoded buffer decodes");
    assert_eq!(decoded, trace);
    assert_eq!(
        chrome::render("run", &decoded),
        chrome::render("run", &trace)
    );
    assert_eq!(metrics::render(&decoded), metrics::render(&trace));
    let json = chrome::render("run", &trace);
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
}

/// EXPLAIN output is deterministic across repeated runs and across
/// executors, names the chosen plan, and prices the rejected alternatives.
#[test]
fn explain_is_deterministic_and_names_the_candidates() {
    let q = line_query(3);
    let db = line3_db(&q);
    let drive = |make: fn() -> Cluster| {
        let mut engine = QueryEngine::with_cluster(make(), Default::default());
        let outcome = engine.run(&q, &db);
        engine.explain(&outcome)
    };
    let seq = drive(|| Cluster::new(4));
    assert_eq!(seq, drive(|| Cluster::new(4)), "repeat run diverged");
    assert_eq!(seq, drive(|| Cluster::new_parallel(4)), "par diverged");
    assert_eq!(seq, drive(|| Cluster::new_net(4)), "net diverged");
    assert!(seq.contains("plan: "));
    assert!(seq.contains("candidates:"));
    assert!(seq.contains("<- chosen"));
    assert!(seq.contains("predicted vs actual"));
}

/// EXPLAIN for registered views: deterministic across backends and renders
/// the maintenance state.
#[test]
fn explain_view_is_deterministic_across_backends() {
    let q = shapes::star_query(3);
    let db = star_db(&q);
    let mut mirror = db.clone();
    mirror.dedup_all();
    let batches = updates::update_stream(&q, &mirror, 3, 0.1, 0.0, 0xab5);
    let drive = |make: fn() -> Cluster| {
        let mut engine = QueryEngine::with_cluster(make(), Default::default());
        let view = engine.register_view(&q, &db);
        for batch in &batches {
            engine.apply_update(view, batch);
        }
        engine.explain_view(view)
    };
    let seq = drive(|| Cluster::new(4));
    assert_eq!(seq, drive(|| Cluster::new_net(4)), "net diverged");
    assert!(seq.contains("view v0:"));
    assert!(seq.contains("last full build:"));
}

/// Checkpoint/restore bookkeeping shows up in the trace as logical events,
/// in program order.
#[test]
fn checkpoint_and_restore_are_traced() {
    let q = shapes::star_query(3);
    let db = star_db(&q);
    let mut engine = QueryEngine::new(4);
    engine.enable_tracing(ObsConfig::default());
    let view = engine.register_view(&q, &db);
    let ckpt = engine.checkpoint(view);
    engine.restore(view, &ckpt);
    let events = engine.take_trace().unwrap().logical_events();
    let ckpt_at = events
        .iter()
        .position(|e| matches!(e, Event::Checkpoint { .. }))
        .expect("checkpoint event recorded");
    let restore_at = events
        .iter()
        .position(|e| matches!(e, Event::Restore { .. }))
        .expect("restore event recorded");
    assert!(ckpt_at < restore_at, "events out of program order");
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, Event::MaintenanceDecision { .. })),
        "no update batch ran, so no maintenance decision may appear"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Bounded eviction: whatever the capacity and event volume, the ring
    /// keeps exactly the newest `capacity` events per ring and reports the
    /// exact drop counts — and physical events can never evict logical ones.
    #[test]
    fn ring_eviction_keeps_newest_with_exact_drop_counts(
        capacity in 1usize..40,
        n_logical in 0u64..120,
        n_physical in 0u64..120,
    ) {
        let mut t = Trace::new(ObsConfig { capacity, wall_clock: false });
        for seq in 0..n_logical {
            t.record(Event::Exchange {
                seq,
                kind: RoundKind::Items,
                lo: 0,
                stride: 1,
                counts: vec![seq],
            });
        }
        for i in 0..n_physical {
            t.record(Event::Transport { retransmits: i, acks: 0, dups: 0 });
        }
        let logical = t.logical_events();
        let physical = t.physical_events();
        prop_assert_eq!(logical.len() as u64, n_logical.min(capacity as u64));
        prop_assert_eq!(physical.len() as u64, n_physical.min(capacity as u64));
        let expect_dropped = (
            n_logical.saturating_sub(capacity as u64),
            n_physical.saturating_sub(capacity as u64),
        );
        prop_assert_eq!(t.dropped(), expect_dropped);
        prop_assert_eq!(t.recorded(), n_logical + n_physical);
        // Newest survive: the retained logical events are the tail.
        for (i, e) in logical.iter().enumerate() {
            prop_assert!(
                matches!(e, Event::Exchange { seq, .. } if *seq == expect_dropped.0 + i as u64),
                "entry {} is not the expected tail event: {:?}", i, e
            );
        }
        // Codec round-trip at every fill level.
        prop_assert_eq!(Trace::decode(&t.encode()).unwrap(), t);
    }
}
